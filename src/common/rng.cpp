#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace ageo {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t hash_name(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void Rng::seed_from(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // xoshiro must not be seeded with all zeros; SplitMix64 cannot produce
  // four consecutive zeros, so no further check is needed.
}

Rng::Rng(std::uint64_t seed) noexcept { seed_from(seed); }

Rng::Rng(std::uint64_t master_seed, std::string_view stream_name) noexcept {
  seed_from(master_seed ^ rotl(hash_name(stream_name), 32));
}

Rng Rng::fork(std::string_view stream_name) const noexcept {
  // Mix the current state (not advancing it) with the stream name.
  std::uint64_t mixed = s_[0] ^ rotl(s_[2], 17) ^ hash_name(stream_name);
  return Rng(mixed);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - ~0ULL % n;
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Box–Muller; u1 in (0,1] to keep log() finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

double Rng::exponential(double mean) noexcept {
  return -mean * std::log(1.0 - uniform());
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

}  // namespace ageo
