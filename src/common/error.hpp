// Error hierarchy for the ageo library.
//
// Libraries throw; applications decide. All ageo exceptions derive from
// ageo::Error so callers can catch the whole library with one handler.
#pragma once

#include <stdexcept>
#include <string>

namespace ageo {

/// Base class for every exception thrown by the ageo library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller-supplied argument violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An operation required data that has not been supplied yet
/// (e.g. multilaterating before calibrating).
class NotCalibrated : public Error {
 public:
  explicit NotCalibrated(const std::string& what) : Error(what) {}
};

/// A network-simulation operation was refused by the simulated host
/// (filtered protocol, rate limit, unreachable).
class NetRefused : public Error {
 public:
  explicit NetRefused(const std::string& what) : Error(what) {}
};

/// A measurement campaign exhausted its retry budget while configured
/// to abort loudly rather than degrade silently
/// (RetryPolicy::abort_on_budget_exhausted).
class CampaignAborted : public Error {
 public:
  explicit CampaignAborted(const std::string& what) : Error(what) {}
};

namespace detail {
/// Throw InvalidArgument when `cond` is false. Used to validate wide
/// contracts at public API boundaries.
inline void require(bool cond, const char* msg) {
  if (!cond) throw InvalidArgument(msg);
}
}  // namespace detail

}  // namespace ageo
