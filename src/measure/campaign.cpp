#include "measure/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace ageo::measure {

namespace {
void check_config(const CampaignConfig& c) {
  detail::require(c.retry.max_attempts > 0,
                  "CampaignEngine: max_attempts must be > 0");
  detail::require(c.retry.backoff_base_rounds >= 0,
                  "CampaignEngine: backoff_base_rounds must be >= 0");
  detail::require(c.retry.backoff_factor >= 1.0,
                  "CampaignEngine: backoff_factor must be >= 1");
  detail::require(c.retry.backoff_cap_rounds >= c.retry.backoff_base_rounds,
                  "CampaignEngine: backoff cap below base");
  detail::require(c.retry.campaign_retry_budget >= 0,
                  "CampaignEngine: retry budget must be >= 0");
  detail::require(c.tunnel.failure_streak_for_check > 0,
                  "CampaignEngine: failure_streak_for_check must be > 0");
  detail::require(c.tunnel.reconnect_attempts >= 0,
                  "CampaignEngine: reconnect_attempts must be >= 0");
  detail::require(c.tunnel.reconnect_wait_rounds >= 0,
                  "CampaignEngine: reconnect_wait_rounds must be >= 0");
  detail::require(c.tunnel.rtt_drift_tolerance >= 1.0,
                  "CampaignEngine: rtt_drift_tolerance must be >= 1");
  detail::require(c.tunnel.self_ping_samples > 0,
                  "CampaignEngine: self_ping_samples must be > 0");
}
}  // namespace

CampaignEngine::CampaignEngine(RichProbeFn probe, CampaignConfig config,
                               BreakerBoard* shared_board)
    : probe_(std::move(probe)), config_(config) {
  check_config(config_);
  detail::require(static_cast<bool>(probe_),
                  "CampaignEngine: probe must be callable");
  if (shared_board) {
    board_ = shared_board;
  } else {
    owned_board_ = std::make_unique<BreakerBoard>(config_.breaker);
    board_ = owned_board_.get();
  }
}

CampaignEngine::CampaignEngine(ProbeFn probe, CampaignConfig config,
                               BreakerBoard* shared_board)
    : CampaignEngine(lift_probe(std::move(probe)), config, shared_board) {}

void CampaignEngine::set_active_filter(
    std::function<bool(std::size_t)> is_active) {
  active_ = std::move(is_active);
}

void CampaignEngine::set_round_hook(std::function<void()> hook) {
  round_hook_ = std::move(hook);
}

void CampaignEngine::attach_tunnel(ProxyProber& prober) {
  tunnel_ = &prober;
  tunnel_baseline_rtt_ms_ = prober.tunnel_rtt_ms();
}

int CampaignEngine::retries_left() const noexcept {
  return std::max(0, config_.retry.campaign_retry_budget - retries_used_);
}

void CampaignEngine::advance_rounds(int n) {
  if (n <= 0) return;
  board_->tick(static_cast<std::uint64_t>(n));
  stats_.rounds += static_cast<std::uint64_t>(n);
  if (round_hook_)
    for (int i = 0; i < n; ++i) round_hook_();
}

ProbeReply CampaignEngine::raw_probe(std::size_t landmark_id) {
  if (active_ && !active_(landmark_id)) {
    ++stats_.gated_skips;
    return {ProbeOutcome::kGatedInactive, 0.0};
  }
  if (!board_->allows(landmark_id)) {
    ++stats_.breaker_skips;
    return {ProbeOutcome::kBreakerOpen, 0.0};
  }
  if (board_->in_half_open(landmark_id)) ++stats_.half_open_probes;
  ProbeReply r = probe_(landmark_id);
  ++stats_.probes_sent;
  if (r.measured()) {
    // Simulated RTT — seed-derived, deterministic across thread counts.
    AGEO_HIST("measure.rtt_ms", r.rtt_ms, 0.5, 4096.0);
    if (r.outcome == ProbeOutcome::kOk)
      ++stats_.ok;
    else
      ++stats_.refused_measured;
    board_->record_success(landmark_id);
    timeout_streak_ = 0;
    return r;
  }
  // A drop is an adversarial act by the landmark; a timeout is honest
  // congestion/outage. Indistinguishable to a real client, so both feed
  // the retry loop, the breaker and the tunnel-check streak identically
  // — only the ledger differs (DESIGN.md §11).
  if (r.outcome == ProbeOutcome::kDropped)
    ++stats_.dropped;
  else
    ++stats_.timeouts;
  ++timeout_streak_;
  // When the tunnel itself is down the landmark is blameless: do not
  // feed its breaker, let the tunnel check below handle the outage.
  const bool tunnel_down = tunnel_ && !tunnel_->session().alive();
  if (!tunnel_down && board_->record_failure(landmark_id))
    ++stats_.breaker_trips;
  maybe_check_tunnel();
  return r;
}

void CampaignEngine::maybe_check_tunnel() {
  if (!tunnel_ ||
      timeout_streak_ < config_.tunnel.failure_streak_for_check)
    return;
  timeout_streak_ = 0;
  if (tunnel_->session().alive()) return;  // landmarks, not the tunnel
  ++stats_.tunnel_drops;
  for (int a = 0; a < config_.tunnel.reconnect_attempts; ++a) {
    advance_rounds(config_.tunnel.reconnect_wait_rounds);
    if (!tunnel_->session().reconnect()) continue;
    ++stats_.tunnel_reconnects;
    // The tunnel is back; the client-proxy leg may have been re-routed,
    // so re-estimate it and flag the row when it drifted.
    auto fresh = tunnel_->retake_self_ping(config_.tunnel.self_ping_samples);
    if (fresh && tunnel_baseline_rtt_ms_ > 0.0) {
      double ratio = *fresh / tunnel_baseline_rtt_ms_;
      if (ratio > config_.tunnel.rtt_drift_tolerance ||
          ratio < 1.0 / config_.tunnel.rtt_drift_tolerance) {
        ++stats_.tunnel_drift_flags;
        tunnel_flagged_ = true;
      }
    }
    return;
  }
  // Still down after the bounded loop; subsequent probes keep timing
  // out and the next streak re-enters this path.
}

ProbeReply CampaignEngine::probe(std::size_t landmark_id) {
  const auto retryable = [](ProbeOutcome o) {
    return o == ProbeOutcome::kTimeout || o == ProbeOutcome::kDropped;
  };
  ProbeReply r = raw_probe(landmark_id);
  if (!retryable(r.outcome)) return r;
  int backoff = config_.retry.backoff_base_rounds;
  for (int attempt = 1; attempt < config_.retry.max_attempts; ++attempt) {
    if (retries_used_ >= config_.retry.campaign_retry_budget) {
      ++stats_.budget_denied;
      if (config_.retry.abort_on_budget_exhausted)
        throw CampaignAborted(
            "campaign retry budget exhausted at landmark " +
            std::to_string(landmark_id));
      break;
    }
    ++retries_used_;
    ++stats_.retries;
    advance_rounds(backoff);
    backoff = std::min(
        config_.retry.backoff_cap_rounds,
        static_cast<int>(
            std::ceil(backoff * config_.retry.backoff_factor)));
    r = raw_probe(landmark_id);
    if (!retryable(r.outcome)) return r;
  }
  if (retryable(r.outcome)) {
    ++stats_.retry_exhausted;
    r.outcome = ProbeOutcome::kRetryExhausted;
  }
  return r;
}

std::optional<double> CampaignEngine::min_probe(std::size_t landmark_id,
                                                int attempts) {
  std::optional<double> best;
  for (int i = 0; i < attempts; ++i) {
    ProbeReply r = probe(landmark_id);
    if (r.measured() && (!best || r.rtt_ms < *best)) best = r.rtt_ms;
    // An open breaker or an epoch gate will not change within this
    // volley; stop hammering.
    if (r.outcome == ProbeOutcome::kBreakerOpen ||
        r.outcome == ProbeOutcome::kGatedInactive)
      break;
  }
  advance_rounds(1);
  return best;
}

std::size_t CampaignEngine::prune_breakers(
    const std::function<bool(std::size_t)>& keep) {
  return board_->prune(keep);
}

TwoPhaseResult two_phase_measure(const Testbed& bed, CampaignEngine& engine,
                                 Rng& rng, const TwoPhaseConfig& cfg) {
  AGEO_SPAN("measure", "two_phase.campaign");
  AGEO_COUNT("measure.two_phase.campaign_runs");
  detail::require(cfg.anchors_per_continent > 0 && cfg.phase2_landmarks > 0 &&
                      cfg.attempts > 0,
                  "two_phase_measure: invalid config");
  TwoPhaseResult result;
  const auto& landmarks = bed.landmarks();

  // ---- Phase 1: three anchors per continent, engine-managed ----
  double best_delay = std::numeric_limits<double>::infinity();
  for (std::size_t cont = 0; cont < world::kContinentCount; ++cont) {
    auto continent = static_cast<world::Continent>(cont);
    std::vector<std::size_t> pool;
    for (std::size_t a : bed.anchor_ids())
      if (landmarks[a].continent == continent) pool.push_back(a);
    int want = std::min<int>(cfg.anchors_per_continent,
                             static_cast<int>(pool.size()));
    for (int k = 0; k < want; ++k) {
      std::size_t pick =
          rng.uniform_index(pool.size() - static_cast<std::size_t>(k));
      std::swap(pool[pick], pool[pool.size() - 1 - static_cast<std::size_t>(k)]);
      std::size_t id = pool[pool.size() - 1 - static_cast<std::size_t>(k)];
      auto m = engine.min_probe(id, 1);
      if (!m) continue;
      result.phase1.push_back({id, landmarks[id].location, *m / 2.0});
      if (*m < best_delay) {
        best_delay = *m;
        result.continent = continent;
      }
    }
  }

  // ---- Phase 2: 25 landmarks on the chosen continent, with adaptive
  // replacement — a landmark that exhausts its retries (or is breaker-
  // open / gated) is substituted by a fresh draw from the remaining
  // pool until the observation count is met or the pool is dry. ----
  std::vector<std::size_t> pool;
  for (std::size_t i = 0; i < landmarks.size(); ++i)
    if (landmarks[i].continent == result.continent) pool.push_back(i);
  std::size_t want = std::min<std::size_t>(
      static_cast<std::size_t>(cfg.phase2_landmarks), pool.size());
  // Incremental Fisher–Yates: draws beyond the first `want` are the
  // replacement landmarks, still uniform over the untouched remainder.
  std::size_t cursor = 0;
  while (result.observations.size() < want && cursor < pool.size()) {
    std::size_t pick = cursor + rng.uniform_index(pool.size() - cursor);
    std::swap(pool[cursor], pool[pick]);
    std::size_t id = pool[cursor];
    const bool is_replacement = cursor >= want;
    ++cursor;
    if (is_replacement) engine.count_replacement();
    auto m = engine.min_probe(id, cfg.attempts);
    if (!m) continue;
    result.observations.push_back({id, landmarks[id].location, *m / 2.0});
    result.landmark_ids.push_back(id);
  }
  result.stats = engine.stats();
  return result;
}

}  // namespace ageo::measure
