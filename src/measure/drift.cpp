#include "measure/drift.hpp"

#include <algorithm>
#include <cmath>

namespace ageo::measure {

DriftWatchdog::DriftWatchdog(std::size_t n_landmarks, DriftConfig cfg)
    : cfg_(cfg), entries_(n_landmarks) {
  if (!(cfg_.ewma_alpha > 0.0) || cfg_.ewma_alpha > 1.0)
    cfg_.ewma_alpha = 0.25;
}

void DriftWatchdog::observe(std::size_t landmark_id,
                            double residual_ms) noexcept {
  if (landmark_id >= entries_.size() || !std::isfinite(residual_ms)) return;
  DriftEntry& e = entries_[landmark_id];
  if (e.samples == 0) {
    e.ewma_ms = residual_ms;
    e.min_ms = residual_ms;
    e.max_ms = residual_ms;
  } else {
    e.ewma_ms += cfg_.ewma_alpha * (residual_ms - e.ewma_ms);
    e.min_ms = std::min(e.min_ms, residual_ms);
    e.max_ms = std::max(e.max_ms, residual_ms);
  }
  ++e.samples;
}

bool DriftWatchdog::is_flagged(std::size_t landmark_id) const noexcept {
  if (landmark_id >= entries_.size()) return false;
  const DriftEntry& e = entries_[landmark_id];
  if (e.samples < cfg_.min_samples) return false;
  return e.ewma_ms <= -cfg_.deflate_ms || e.ewma_ms >= cfg_.inflate_ms;
}

std::vector<std::size_t> DriftWatchdog::flagged() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (is_flagged(i)) out.push_back(i);
  return out;
}

}  // namespace ageo::measure
