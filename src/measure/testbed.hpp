// Testbed: world + network + landmark constellation + calibration, wired
// together the way the paper's measurement server wires RIPE Atlas
// (§4.1). Examples, tests and benches build one of these and go.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "calib/store.hpp"
#include "netsim/network.hpp"
#include "world/constellation.hpp"
#include "world/hubs.hpp"
#include "world/world_model.hpp"

namespace ageo::measure {

struct TestbedConfig {
  std::uint64_t seed = 42;
  world::ConstellationConfig constellation;
  netsim::LatencyParams latency;
  /// Ping samples per landmark pair during calibration; the minimum is
  /// kept (the paper uses two weeks of RIPE mesh pings).
  int calibration_samples = 3;
  /// Calibrate probes as well as anchors (probes only ping anchors).
  bool calibrate_probes = true;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  const TestbedConfig& config() const noexcept { return config_; }
  const world::WorldModel& world() const noexcept { return world_; }
  const world::HubGraph& hubs() const noexcept {
    return world::HubGraph::builtin();
  }
  netsim::Network& net() noexcept { return net_; }
  const netsim::Network& net() const noexcept { return net_; }

  /// Landmarks; index == landmark id == CalibrationStore id.
  const std::vector<world::Landmark>& landmarks() const noexcept {
    return landmarks_;
  }
  /// Network host id of landmark i.
  netsim::HostId landmark_host(std::size_t i) const {
    return landmark_hosts_.at(i);
  }
  /// Indices of the anchor subset.
  const std::vector<std::size_t>& anchor_ids() const noexcept {
    return anchor_ids_;
  }

  const calib::CalibrationStore& store() const noexcept { return store_; }

  /// Register an additional host (proxy, client, crowd host) on the
  /// simulated network.
  netsim::HostId add_host(const netsim::HostProfile& profile) {
    return net_.add_host(profile);
  }

  /// Refit every calibration model on fresh ping samples — the paper's
  /// sliding two-week window (§4.1). Landmark ids stay stable.
  void recalibrate();

 private:
  TestbedConfig config_;
  world::WorldModel world_;
  netsim::Network net_;
  std::vector<world::Landmark> landmarks_;
  std::vector<netsim::HostId> landmark_hosts_;
  std::vector<std::size_t> anchor_ids_;
  calib::CalibrationStore store_;

  void calibrate();
};

}  // namespace ageo::measure
