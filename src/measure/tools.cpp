#include "measure/tools.hpp"

#include <cmath>

namespace ageo::measure {

std::optional<double> CliTool::measure_ms(netsim::Network& net,
                                          netsim::HostId from,
                                          netsim::HostId to) {
  auto r = net.tcp_connect(from, to, 80);
  if (r.outcome == netsim::ConnectOutcome::kTimeout ||
      r.outcome == netsim::ConnectOutcome::kDropped)
    return std::nullopt;
  return r.elapsed_ms;
}

std::optional<double> CliTool::measure_via_ms(netsim::ProxySession& session,
                                              netsim::HostId landmark) {
  auto r = session.connect_via(landmark, 80);
  if (r.outcome == netsim::ConnectOutcome::kTimeout ||
      r.outcome == netsim::ConnectOutcome::kDropped)
    return std::nullopt;
  return r.elapsed_ms;
}

WebTool::WebTool(WebToolParams params) : params_(params) {}

namespace {
/// Browser-specific fixed overhead of the fetch/timer stack on Windows,
/// ms. Separate from the rare high outliers; this is what makes the
/// browser a significant ANOVA factor in Fig. 5 (F = 13.11).
double browser_base_ms(world::Browser browser) {
  switch (browser) {
    case world::Browser::kChrome:
      return 0.0;
    case world::Browser::kFirefox:
      return 12.0;
    case world::Browser::kEdge:
      return 28.0;
    case world::Browser::kCli:
      return 0.0;
  }
  return 0.0;
}
}  // namespace

double WebTool::outlier_base_ms(world::Browser browser) const noexcept {
  // Fig. 6: outlier magnitude depends primarily on the browser.
  switch (browser) {
    case world::Browser::kChrome:
      return 600.0;
    case world::Browser::kFirefox:
      return 1100.0;
    case world::Browser::kEdge:
      return 1900.0;
    case world::Browser::kCli:
      return 0.0;
  }
  return 0.0;
}

WebSample WebTool::measure(netsim::Network& net, netsim::HostId from,
                           netsim::HostId landmark, bool listens_port80,
                           world::ClientOs os, world::Browser browser,
                           Rng& rng) const {
  WebSample s;
  // One round trip for the SYN/RST; if the landmark listens, the TLS
  // ClientHello goes out and the failure only surfaces a round trip
  // later (paper Fig. 7).
  s.round_trips = listens_port80 ? 2 : 1;
  double rtt_sum = 0.0;
  for (int i = 0; i < s.round_trips; ++i)
    rtt_sum += net.sample_rtt_ms(from, landmark);

  if (os == world::ClientOs::kLinux) {
    s.elapsed_ms = rtt_sum + params_.linux_overhead_ms +
                   std::abs(rng.normal(0.0, 0.5));
  } else {
    s.elapsed_ms =
        rtt_sum * params_.windows_slope_factor + browser_base_ms(browser) +
        std::max(0.0, rng.normal(params_.windows_overhead_mean_ms,
                                 params_.windows_overhead_sd_ms));
    if (rng.chance(params_.outlier_probability)) {
      s.is_outlier = true;
      s.elapsed_ms += outlier_base_ms(browser) * rng.lognormal(0.0, 0.35);
    }
  }
  return s;
}

}  // namespace ageo::measure
