// Probe outcomes and fault policies for resilient measurement campaigns.
//
// The paper's measurement substrate was hostile: landmarks filtered or
// timed out (§4.2), 12 anchors were decommissioned mid-experiment (§4.1),
// and proxy tunnels dropped mid-campaign. A bare ProbeFn collapses all of
// that into nullopt; this header gives every probe a structured outcome,
// a retry policy with capped exponential backoff and a per-campaign
// budget, and a per-landmark circuit breaker whose state can outlive one
// campaign (one breaker board per Auditor::run).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

namespace ageo::measure {

/// One probe of one landmark: returns the measured (possibly
/// proxy-corrected) round-trip time in ms, or nullopt when the
/// measurement failed and must be discarded.
using ProbeFn =
    std::function<std::optional<double>(std::size_t landmark_id)>;

/// How one probe of one landmark resolved.
enum class ProbeOutcome : std::uint8_t {
  kOk,              // handshake completed: RTT measured
  kRefusedMeasured, // RST after one round trip: RTT still measured (§4.2)
  kTimeout,         // filtered, rate-limited, or host in an outage
  kRetryExhausted,  // every attempt of the retry policy failed
  kBreakerOpen,     // circuit breaker open: probe not sent
  kGatedInactive,   // landmark not active this epoch: probe not sent
  kDropped,         // silently discarded by an adversarial landmark
                    // (netsim::ConnectOutcome::kDropped): behaves like a
                    // timeout for retries and breakers, but is counted
                    // separately so selective drops are distinguishable
                    // from honest congestion (DESIGN.md §11)
};

const char* to_string(ProbeOutcome outcome) noexcept;

struct ProbeReply {
  ProbeOutcome outcome = ProbeOutcome::kTimeout;
  /// Meaningful only when measured().
  double rtt_ms = 0.0;

  bool measured() const noexcept {
    return outcome == ProbeOutcome::kOk ||
           outcome == ProbeOutcome::kRefusedMeasured;
  }
};

/// A probe that reports how it resolved, not just whether.
using RichProbeFn = std::function<ProbeReply(std::size_t landmark_id)>;

/// Adapt a plain ProbeFn: nullopt becomes kTimeout (the plain interface
/// cannot distinguish finer failure modes).
RichProbeFn lift_probe(ProbeFn inner);

struct RetryPolicy {
  /// Total tries per probe, including the first attempt.
  int max_attempts = 3;
  /// Backoff before the first retry, in probe rounds; doubles (capped)
  /// for each further retry of the same probe.
  int backoff_base_rounds = 1;
  double backoff_factor = 2.0;
  int backoff_cap_rounds = 8;
  /// Retries (attempts beyond each probe's first) allowed per campaign.
  /// Once spent, failed probes resolve to kRetryExhausted immediately.
  int campaign_retry_budget = 200;
  /// Throw CampaignAborted instead of degrading when the budget runs
  /// out; off by default — campaigns prefer degraded data over none.
  bool abort_on_budget_exhausted = false;
};

struct BreakerPolicy {
  /// Consecutive failures that open a landmark's breaker.
  int failure_threshold = 3;
  /// Rounds an open breaker waits before allowing a half-open re-probe.
  int cooldown_rounds = 8;
};

/// Everything a campaign observed, aggregated. Rides on TwoPhaseResult
/// and AuditReport so degradation is observable instead of silent.
struct CampaignStats {
  std::uint64_t probes_sent = 0;      // probes actually put on the wire
  std::uint64_t ok = 0;
  std::uint64_t refused_measured = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dropped = 0;          // adversarial selective drops
  std::uint64_t retries = 0;          // attempts beyond each probe's first
  std::uint64_t retry_exhausted = 0;  // probes that failed every attempt
  std::uint64_t budget_denied = 0;    // retries skipped: budget exhausted
  std::uint64_t breaker_trips = 0;    // breaker open/re-open events
  std::uint64_t breaker_skips = 0;    // probes not sent: breaker open
  std::uint64_t half_open_probes = 0; // trial probes after cooldown
  std::uint64_t gated_skips = 0;      // probes not sent: landmark inactive
  std::uint64_t replacements = 0;     // substitute landmarks drawn
  std::uint64_t tunnel_drops = 0;     // dropped-tunnel detections
  std::uint64_t tunnel_reconnects = 0;
  std::uint64_t tunnel_drift_flags = 0; // re-ping drifted past tolerance
  std::uint64_t rounds = 0;           // probe rounds this campaign

  std::uint64_t measured() const noexcept { return ok + refused_measured; }
  void merge(const CampaignStats& other) noexcept;
  friend bool operator==(const CampaignStats&,
                         const CampaignStats&) = default;
};

/// Add one campaign's stats to the process-wide metrics registry as
/// "measure.campaign.*" counters (the registry-backed view of
/// CampaignStats). Call once per campaign — the audit fan-out publishes
/// each proxy's per-row stats from the worker that measured it, and the
/// shard merge makes the totals independent of thread count. No-op when
/// metrics are disabled.
void publish_campaign_stats(const CampaignStats& stats);

/// Per-landmark circuit-breaker state plus the probe-round clock. One
/// board can be shared by every campaign of an Auditor::run, so a
/// landmark that went dark during proxy #3 is not hammered again for
/// proxies #4..#2269 until its cooldown elapses.
class BreakerBoard {
 public:
  explicit BreakerBoard(BreakerPolicy policy = {});

  const BreakerPolicy& policy() const noexcept { return policy_; }

  std::uint64_t clock() const noexcept { return clock_; }
  void tick(std::uint64_t rounds = 1) noexcept { clock_ += rounds; }

  /// Whether a probe of this landmark may be sent now (breaker closed,
  /// or open with the cooldown elapsed — the half-open trial).
  bool allows(std::size_t landmark_id) const;
  /// Open and still cooling down.
  bool is_open(std::size_t landmark_id) const;
  /// Open, cooldown elapsed: the next probe is a half-open trial.
  bool in_half_open(std::size_t landmark_id) const;
  /// Whether any failure state is recorded for this landmark.
  bool tracked(std::size_t landmark_id) const;

  /// Record a failed probe. Returns true when this failure opened (or,
  /// from half-open, re-opened) the breaker.
  bool record_failure(std::size_t landmark_id);
  /// Record a measured probe: closes the breaker, forgets the landmark.
  void record_success(std::size_t landmark_id);

  /// Fold another board's state into this one: the clock advances to the
  /// later of the two, and per landmark the MORE BROKEN state wins (open
  /// beats closed; among open entries the later half-open deadline wins;
  /// among closed ones the higher failure streak). Merging is commutative
  /// and associative up to those maxima, so folding per-worker boards in
  /// any order yields one deterministic run board — the parallel audit
  /// merges its per-proxy boards through here at the join barrier.
  void merge(const BreakerBoard& other);

  /// Forget one landmark (e.g. decommissioned by the landmark service).
  void drop(std::size_t landmark_id);
  /// Forget every landmark `keep` rejects; returns how many were
  /// dropped. Call after LandmarkService::refresh so breaker state for
  /// removed landmarks does not leak across epochs.
  std::size_t prune(const std::function<bool(std::size_t)>& keep);

  /// Landmarks currently open (cooling down or awaiting trial).
  std::size_t open_count() const;

 private:
  struct Entry {
    int consecutive_failures = 0;
    bool open = false;
    std::uint64_t open_until = 0;  // clock at which half-open begins
  };
  BreakerPolicy policy_;
  std::uint64_t clock_ = 0;
  std::unordered_map<std::size_t, Entry> entries_;
};

}  // namespace ageo::measure
