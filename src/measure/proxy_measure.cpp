#include "measure/proxy_measure.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "measure/tools.hpp"

namespace ageo::measure {

EtaEstimate estimate_eta(std::span<netsim::ProxySession> sessions,
                         int samples) {
  detail::require(samples > 0, "estimate_eta: samples must be > 0");
  std::vector<double> direct, indirect;
  for (auto& s : sessions) {
    if (!s.behavior().icmp_responds) continue;
    double d = std::numeric_limits<double>::infinity();
    double ind = std::numeric_limits<double>::infinity();
    bool ok = true;
    for (int i = 0; i < samples; ++i) {
      auto dp = s.direct_ping_ms();
      if (!dp) {
        ok = false;
        break;
      }
      d = std::min(d, *dp);
      ind = std::min(ind, s.self_ping_ms());
    }
    if (!ok) continue;
    direct.push_back(d);
    indirect.push_back(ind);
  }
  EtaEstimate e;
  e.n_proxies = direct.size();
  if (direct.size() < 3) return e;  // default eta = 0.5
  auto fit = stats::theil_sen(indirect, direct);
  e.eta = fit.slope;
  e.r_squared = fit.r_squared;
  e.eta_ci_low = e.eta_ci_high = e.eta;

  // 95% bootstrap CI over proxies (resample pairs, refit).
  if (direct.size() >= 5) {
    constexpr int kResamples = 200;
    Rng rng(hash_name("eta-bootstrap") ^ direct.size());
    std::vector<double> slopes;
    slopes.reserve(kResamples);
    std::vector<double> bx(direct.size()), by(direct.size());
    for (int r = 0; r < kResamples; ++r) {
      for (std::size_t i = 0; i < direct.size(); ++i) {
        std::size_t k = rng.uniform_index(direct.size());
        bx[i] = indirect[k];
        by[i] = direct[k];
      }
      // Degenerate resamples (all-equal x) are skipped.
      bool constant = true;
      for (std::size_t i = 1; i < bx.size(); ++i)
        if (bx[i] != bx[0]) constant = false;
      if (constant) continue;
      slopes.push_back(stats::theil_sen(bx, by).slope);
    }
    if (slopes.size() >= 20) {
      std::sort(slopes.begin(), slopes.end());
      e.eta_ci_low = slopes[slopes.size() * 25 / 1000];
      e.eta_ci_high = slopes[slopes.size() * 975 / 1000];
    }
  }
  // With few proxies the bootstrap degenerates (or is skipped outright);
  // whatever happened, the interval must bracket the point estimate.
  e.eta_ci_low = std::min(e.eta_ci_low, e.eta);
  e.eta_ci_high = std::max(e.eta_ci_high, e.eta);
  return e;
}

ProxyProber::ProxyProber(const Testbed& bed, netsim::ProxySession& session,
                         double eta, int self_ping_samples)
    : bed_(&bed), session_(&session), eta_(eta) {
  detail::require(eta > 0.0 && eta < 1.0,
                  "ProxyProber: eta must be in (0, 1)");
  detail::require(self_ping_samples > 0,
                  "ProxyProber: need at least one self ping");
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < self_ping_samples; ++i)
    best = std::min(best, session.self_ping_ms());
  tunnel_rtt_ms_ = eta_ * best;
}

std::optional<double> ProxyProber::operator()(std::size_t landmark_id) {
  auto r = rich_probe(landmark_id);
  if (!r.measured()) return std::nullopt;
  return r.rtt_ms;
}

ProbeReply ProxyProber::rich_probe(std::size_t landmark_id) {
  netsim::HostId lm = bed_->landmark_host(landmark_id);
  auto r = session_->connect_via(lm, 80);
  if (r.outcome == netsim::ConnectOutcome::kTimeout)
    return {ProbeOutcome::kTimeout, 0.0};
  if (r.outcome == netsim::ConnectOutcome::kDropped)
    return {ProbeOutcome::kDropped, 0.0};
  double corrected = std::max(kCorrectionFloorMs,
                              r.elapsed_ms - tunnel_rtt_ms_);
  return {r.outcome == netsim::ConnectOutcome::kRefused
              ? ProbeOutcome::kRefusedMeasured
              : ProbeOutcome::kOk,
          corrected};
}

ProbeFn ProxyProber::as_probe_fn() {
  return [this](std::size_t id) { return (*this)(id); };
}

RichProbeFn ProxyProber::as_rich_probe_fn() {
  return [this](std::size_t id) { return rich_probe(id); };
}

std::optional<double> ProxyProber::retake_self_ping(int samples) {
  detail::require(samples > 0,
                  "ProxyProber::retake_self_ping: need at least one ping");
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < samples; ++i) {
    auto p = session_->try_self_ping_ms();
    if (!p) return std::nullopt;
    best = std::min(best, *p);
  }
  tunnel_rtt_ms_ = eta_ * best;
  return tunnel_rtt_ms_;
}

}  // namespace ageo::measure
