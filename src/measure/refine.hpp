// Iterative region refinement (paper §8.1, future work).
//
// The two-phase procedure's random landmark selection produces noisy
// groups of predictions (Fig. 16). Refinement adds the unused landmarks
// closest to the current region's centroid, batch by batch, re-running
// the estimator until the region stops shrinking.
#pragma once

#include "algos/geolocator.hpp"
#include "measure/testbed.hpp"
#include "measure/two_phase.hpp"

namespace ageo::measure {

struct RefineConfig {
  int batch_size = 10;
  int max_rounds = 6;
  /// Stop when a round shrinks the region by less than this fraction.
  double min_relative_improvement = 0.05;
  int attempts = 3;
};

struct RefineResult {
  algos::GeoEstimate estimate;
  std::vector<algos::Observation> observations;
  int rounds_used = 0;
};

/// Refine `initial` (typically a two-phase result) with extra landmarks.
RefineResult refine_region(const Testbed& bed, const grid::Grid& g,
                           const algos::Geolocator& locator,
                           const ProbeFn& probe,
                           const TwoPhaseResult& initial,
                           const grid::Region* mask = nullptr,
                           const RefineConfig& cfg = {});

}  // namespace ageo::measure
