#include "measure/refine.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "common/error.hpp"
#include "geo/geodesy.hpp"

namespace ageo::measure {

RefineResult refine_region(const Testbed& bed, const grid::Grid& g,
                           const algos::Geolocator& locator,
                           const ProbeFn& probe,
                           const TwoPhaseResult& initial,
                           const grid::Region* mask,
                           const RefineConfig& cfg) {
  detail::require(cfg.batch_size > 0 && cfg.max_rounds >= 0 &&
                      cfg.attempts > 0,
                  "refine_region: invalid config");
  RefineResult result;
  result.observations = initial.observations;
  result.estimate =
      locator.locate(g, bed.store(), result.observations, mask);

  std::set<std::size_t> used(initial.landmark_ids.begin(),
                             initial.landmark_ids.end());
  for (const auto& ob : initial.phase1) used.insert(ob.landmark_id);

  const auto& landmarks = bed.landmarks();
  for (int round = 0; round < cfg.max_rounds; ++round) {
    auto center = result.estimate.centroid();
    if (!center) break;  // empty region: nothing to steer by
    double area_before = result.estimate.area_km2();

    // Unused landmarks on the same continent, nearest to the centroid.
    std::vector<std::size_t> pool;
    for (std::size_t i = 0; i < landmarks.size(); ++i) {
      if (used.count(i)) continue;
      if (landmarks[i].continent != initial.continent) continue;
      pool.push_back(i);
    }
    if (pool.empty()) break;
    std::sort(pool.begin(), pool.end(), [&](std::size_t a, std::size_t b) {
      return geo::distance_km(landmarks[a].location, *center) <
             geo::distance_km(landmarks[b].location, *center);
    });
    pool.resize(std::min<std::size_t>(
        pool.size(), static_cast<std::size_t>(cfg.batch_size)));

    bool added = false;
    for (std::size_t id : pool) {
      used.insert(id);
      std::optional<double> best;
      for (int a = 0; a < cfg.attempts; ++a) {
        auto m = probe(id);
        if (m && (!best || *m < *best)) best = m;
      }
      if (!best) continue;
      result.observations.push_back(
          {id, landmarks[id].location, *best / 2.0});
      added = true;
    }
    if (!added) break;

    result.estimate =
        locator.locate(g, bed.store(), result.observations, mask);
    ++result.rounds_used;
    double area_after = result.estimate.area_km2();
    if (area_before <= 0.0) break;
    if ((area_before - area_after) / area_before <
        cfg.min_relative_improvement)
      break;
  }
  return result;
}

}  // namespace ageo::measure
