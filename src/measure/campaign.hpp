// The resilient campaign engine.
//
// Wraps any probe with the fault policies of probe_policy.hpp: per-probe
// retry with capped exponential backoff under a per-campaign budget,
// per-landmark circuit breakers (shareable across every proxy of one
// Auditor::run), epoch gating against a live landmark set, and proxy-
// tunnel health — a run of timeouts triggers a tunnel-liveness check,
// a bounded reconnect loop, and a re-taken self-ping whose drift beyond
// tolerance flags the campaign. The two_phase_measure overload below
// adds adaptive landmark replacement: when a selected phase-2 landmark
// exhausts its retries, a substitute is drawn from the remaining pool
// until the requested observation count is met or the pool is dry.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "measure/probe_policy.hpp"
#include "measure/proxy_measure.hpp"
#include "measure/two_phase.hpp"

namespace ageo::measure {

struct TunnelPolicy {
  /// Consecutive timeouts (across landmarks) before suspecting the
  /// tunnel rather than the landmarks.
  int failure_streak_for_check = 4;
  /// Bounded reconnect loop: attempts, and rounds waited between them.
  int reconnect_attempts = 8;
  int reconnect_wait_rounds = 2;
  /// After a reconnect the self-ping is re-taken; a new tunnel-RTT
  /// estimate further than this factor from the original (either
  /// direction) flags the campaign row.
  double rtt_drift_tolerance = 1.5;
  int self_ping_samples = 3;
};

struct CampaignConfig {
  RetryPolicy retry;
  BreakerPolicy breaker;
  TunnelPolicy tunnel;
};

/// One campaign's fault machinery around one probe. Construct per
/// target (per proxy); pass a shared BreakerBoard to persist breaker
/// state and the round clock across campaigns.
class CampaignEngine {
 public:
  CampaignEngine(RichProbeFn probe, CampaignConfig config = {},
                 BreakerBoard* shared_board = nullptr);
  CampaignEngine(ProbeFn probe, CampaignConfig config = {},
                 BreakerBoard* shared_board = nullptr);

  /// Refuse landmarks the predicate rejects (kGatedInactive) — wire to
  /// LandmarkService::is_active so campaigns spanning refresh() never
  /// record observations from decommissioned anchors.
  void set_active_filter(std::function<bool(std::size_t)> is_active);

  /// Called once per elapsed probe round — wire to
  /// netsim::Network::advance_round so simulated outages and rate
  /// limits march in step with the campaign.
  void set_round_hook(std::function<void()> hook);

  /// Enable tunnel-health management for a proxied campaign: dropped-
  /// tunnel detection, reconnect, self-ping re-take, drift flagging.
  void attach_tunnel(ProxyProber& prober);

  /// One policy-managed probe: breaker-gated, retried with backoff.
  ProbeReply probe(std::size_t landmark_id);

  /// Minimum of `attempts` managed probes (the paper keeps per-landmark
  /// minima), or nullopt when none measured. Advances one probe round.
  std::optional<double> min_probe(std::size_t landmark_id, int attempts);

  /// Drop breaker state for landmarks the predicate rejects; call after
  /// LandmarkService::refresh().
  std::size_t prune_breakers(const std::function<bool(std::size_t)>& keep);

  /// Count a substitute landmark drawn by adaptive replacement.
  void count_replacement() noexcept { ++stats_.replacements; }

  const CampaignStats& stats() const noexcept { return stats_; }
  BreakerBoard& board() noexcept { return *board_; }
  const BreakerBoard& board() const noexcept { return *board_; }
  /// True once a re-taken self-ping drifted beyond tolerance.
  bool tunnel_flagged() const noexcept { return tunnel_flagged_; }
  int retries_left() const noexcept;

 private:
  RichProbeFn probe_;
  CampaignConfig config_;
  std::unique_ptr<BreakerBoard> owned_board_;
  BreakerBoard* board_;
  std::function<bool(std::size_t)> active_;
  std::function<void()> round_hook_;
  ProxyProber* tunnel_ = nullptr;
  double tunnel_baseline_rtt_ms_ = 0.0;
  bool tunnel_flagged_ = false;
  int retries_used_ = 0;
  int timeout_streak_ = 0;
  CampaignStats stats_;

  ProbeReply raw_probe(std::size_t landmark_id);
  void advance_rounds(int n);
  void maybe_check_tunnel();
};

/// Run the two-phase procedure under the campaign engine. Identical to
/// the ProbeFn overload when nothing fails; under faults it retries,
/// breaks, and draws substitute phase-2 landmarks from the remaining
/// continental pool until the requested observation count is met or the
/// pool is dry. The engine's cumulative stats snapshot rides back on
/// TwoPhaseResult::stats.
TwoPhaseResult two_phase_measure(const Testbed& bed, CampaignEngine& engine,
                                 Rng& rng, const TwoPhaseConfig& cfg = {});

}  // namespace ageo::measure
