// Two-phase measurement (paper §4.1).
//
// Pinging all ~250 anchors takes minutes and landmarks far from the
// target contribute little (§5.2), so: phase 1 measures three anchors per
// continent and guesses the target's continent from the fastest reply;
// phase 2 measures 25 randomly selected landmarks (anchors + stable
// probes) on that continent.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "algos/geolocator.hpp"
#include "common/rng.hpp"
#include "measure/probe_policy.hpp"
#include "measure/testbed.hpp"
#include "world/continent.hpp"

namespace ageo::measure {

struct TwoPhaseConfig {
  int anchors_per_continent = 3;
  int phase2_landmarks = 25;
  /// Probes per landmark; the minimum is kept.
  int attempts = 3;
};

struct TwoPhaseResult {
  world::Continent continent = world::Continent::kEurope;
  /// Phase-2 observations (one-way delays), ready for a Geolocator.
  std::vector<algos::Observation> observations;
  /// The phase-1 continental scan, same format.
  std::vector<algos::Observation> phase1;
  /// Landmark ids used in phase 2 (diagnostics / refinement).
  std::vector<std::size_t> landmark_ids;
  /// Fault telemetry; populated only by the campaign-engine overload
  /// (measure/campaign.hpp) — all-zero under the bare ProbeFn path.
  CampaignStats stats;
};

/// Run the two-phase procedure. The returned observations may be fewer
/// than requested when landmarks are unreachable through `probe`.
TwoPhaseResult two_phase_measure(const Testbed& bed, const ProbeFn& probe,
                                 Rng& rng, const TwoPhaseConfig& cfg = {});

/// Single-phase variant (measure every anchor); used by the landmark
/// effectiveness analysis (Fig. 11) and as an ablation baseline.
std::vector<algos::Observation> full_scan_measure(const Testbed& bed,
                                                  const ProbeFn& probe,
                                                  int attempts = 3);

}  // namespace ageo::measure
