#include "measure/testbed.hpp"

#include <algorithm>

#include "geo/geodesy.hpp"

namespace ageo::measure {

Testbed::Testbed(TestbedConfig config)
    : config_(config),
      world_(),
      net_(world::HubGraph::builtin(), config.seed, config.latency) {
  world::ConstellationConfig cc = config_.constellation;
  cc.seed = config_.seed;
  landmarks_ = world::generate_constellation(world_, cc);
  landmark_hosts_.reserve(landmarks_.size());
  for (std::size_t i = 0; i < landmarks_.size(); ++i) {
    const auto& lm = landmarks_[i];
    netsim::HostProfile p;
    p.location = lm.location;
    p.net_quality = lm.net_quality;
    p.icmp_responds = true;
    p.tcp_port80_open = lm.listens_port80;
    landmark_hosts_.push_back(net_.add_host(p));
    if (lm.is_anchor) anchor_ids_.push_back(i);
  }
  calibrate();
}

void Testbed::recalibrate() {
  store_ = calib::CalibrationStore();
  calibrate();
}

void Testbed::calibrate() {
  // Each landmark's calibration scatter: minimum one-way delay (RTT/2)
  // versus great-circle distance. Peers are every anchor plus the
  // nearest probes — the RIPE mesh records probe-anchor pings too, and
  // those short-haul pairs are what keep bestlines honest at small
  // distances (without them, a landmark extrapolates its long-haul
  // envelope and underestimates nearby targets; cf. paper Fig. 10).
  const int samples = std::max(1, config_.calibration_samples);

  auto measure_pair = [&](std::size_t i, std::size_t j) {
    double best = net_.sample_rtt_ms(landmark_hosts_[i], landmark_hosts_[j]);
    for (int s = 1; s < samples; ++s)
      best = std::min(best, net_.sample_rtt_ms(landmark_hosts_[i],
                                               landmark_hosts_[j]));
    return calib::CalibPoint{
        geo::distance_km(landmarks_[i].location, landmarks_[j].location),
        best / 2.0};
  };

  // Nearest-probe peers per landmark.
  std::vector<std::size_t> probe_ids;
  for (std::size_t i = 0; i < landmarks_.size(); ++i)
    if (!landmarks_[i].is_anchor) probe_ids.push_back(i);
  constexpr std::size_t kNearProbePeers = 30;

  for (std::size_t i = 0; i < landmarks_.size(); ++i) {
    calib::CalibData data;
    if (landmarks_[i].is_anchor || config_.calibrate_probes) {
      data.reserve(anchor_ids_.size() + kNearProbePeers);
      for (std::size_t a : anchor_ids_) {
        if (a == i) continue;
        data.push_back(measure_pair(i, a));
      }
      // The closest probes contribute short-haul calibration points.
      std::vector<std::size_t> near = probe_ids;
      std::erase(near, i);
      std::size_t take = std::min(kNearProbePeers, near.size());
      std::partial_sort(
          near.begin(), near.begin() + static_cast<std::ptrdiff_t>(take),
          near.end(), [&](std::size_t a, std::size_t b) {
            return geo::distance_km(landmarks_[i].location,
                                    landmarks_[a].location) <
                   geo::distance_km(landmarks_[i].location,
                                    landmarks_[b].location);
          });
      for (std::size_t k = 0; k < take; ++k)
        data.push_back(measure_pair(i, near[k]));
    }
    store_.add_landmark(std::move(data));
  }
  store_.fit_all();
}

}  // namespace ageo::measure
