// Measurement tools (paper §4.2-§4.3).
//
// The command-line tool measures exactly one round trip per TCP connect
// (connect() returns on the SYN-ACK; "connection refused" also counts).
// The web tool can only issue fetch()es: it measures ONE round trip when
// the landmark is not listening on port 80 (RST) and TWO when it is (the
// TLS ClientHello must bounce off the server before the protocol error
// surfaces) — and it cannot tell which happened. On Windows, browser
// timers add large multiplicative and additive noise plus occasional
// "high outliers" (Figs. 4-6).
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "netsim/network.hpp"
#include "netsim/proxy.hpp"
#include "world/crowd.hpp"

namespace ageo::measure {

/// CLI tool: one TCP connect, one RTT, or nothing (filtered).
class CliTool {
 public:
  /// Measured connect time from `from` to `to`, ms, or nullopt when the
  /// connection timed out (errors other than "refused" are discarded,
  /// paper §4.2).
  static std::optional<double> measure_ms(netsim::Network& net,
                                          netsim::HostId from,
                                          netsim::HostId to);

  /// Same, but through a proxy tunnel.
  static std::optional<double> measure_via_ms(netsim::ProxySession& session,
                                              netsim::HostId landmark);
};

struct WebToolParams {
  double linux_overhead_ms = 2.0;
  /// Windows timer/network-stack penalty: multiplies the per-round-trip
  /// time (the paper's Linux-2RTT == Windows-1RTT observation) and adds
  /// a large noisy constant.
  double windows_slope_factor = 1.95;
  double windows_overhead_mean_ms = 45.0;
  double windows_overhead_sd_ms = 12.0;
  /// Probability of a browser-dependent "high outlier" on Windows.
  double outlier_probability = 0.08;
};

/// Web tool measurement of one landmark.
struct WebSample {
  double elapsed_ms = 0.0;
  /// Ground truth (invisible to the web application itself): how many
  /// round trips the fetch actually took.
  int round_trips = 1;
  bool is_outlier = false;
};

class WebTool {
 public:
  explicit WebTool(WebToolParams params = {});

  /// One fetch("https://landmark:80/") measurement. `listens_port80`
  /// decides one vs two round trips.
  WebSample measure(netsim::Network& net, netsim::HostId from,
                    netsim::HostId landmark, bool listens_port80,
                    world::ClientOs os, world::Browser browser,
                    Rng& rng) const;

  const WebToolParams& params() const noexcept { return params_; }

 private:
  WebToolParams params_;

  double outlier_base_ms(world::Browser browser) const noexcept;
};

}  // namespace ageo::measure
