#include "measure/probe_policy.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace ageo::measure {

const char* to_string(ProbeOutcome outcome) noexcept {
  switch (outcome) {
    case ProbeOutcome::kOk:
      return "ok";
    case ProbeOutcome::kRefusedMeasured:
      return "refused-measured";
    case ProbeOutcome::kTimeout:
      return "timeout";
    case ProbeOutcome::kRetryExhausted:
      return "retry-exhausted";
    case ProbeOutcome::kBreakerOpen:
      return "breaker-open";
    case ProbeOutcome::kGatedInactive:
      return "gated-inactive";
    case ProbeOutcome::kDropped:
      return "dropped";
  }
  return "unknown";
}

RichProbeFn lift_probe(ProbeFn inner) {
  detail::require(static_cast<bool>(inner),
                  "lift_probe: probe must be callable");
  return [inner = std::move(inner)](std::size_t id) -> ProbeReply {
    auto m = inner(id);
    if (!m) return {ProbeOutcome::kTimeout, 0.0};
    return {ProbeOutcome::kOk, *m};
  };
}

void CampaignStats::merge(const CampaignStats& other) noexcept {
  probes_sent += other.probes_sent;
  ok += other.ok;
  refused_measured += other.refused_measured;
  timeouts += other.timeouts;
  dropped += other.dropped;
  retries += other.retries;
  retry_exhausted += other.retry_exhausted;
  budget_denied += other.budget_denied;
  breaker_trips += other.breaker_trips;
  breaker_skips += other.breaker_skips;
  half_open_probes += other.half_open_probes;
  gated_skips += other.gated_skips;
  replacements += other.replacements;
  tunnel_drops += other.tunnel_drops;
  tunnel_reconnects += other.tunnel_reconnects;
  tunnel_drift_flags += other.tunnel_drift_flags;
  rounds += other.rounds;
}

void publish_campaign_stats(const CampaignStats& stats) {
  AGEO_COUNTER_ADD("measure.campaign.probes_sent", stats.probes_sent);
  AGEO_COUNTER_ADD("measure.campaign.ok", stats.ok);
  AGEO_COUNTER_ADD("measure.campaign.refused_measured",
                   stats.refused_measured);
  AGEO_COUNTER_ADD("measure.campaign.timeouts", stats.timeouts);
  AGEO_COUNTER_ADD("measure.campaign.dropped", stats.dropped);
  AGEO_COUNTER_ADD("measure.campaign.retries", stats.retries);
  AGEO_COUNTER_ADD("measure.campaign.retry_exhausted", stats.retry_exhausted);
  AGEO_COUNTER_ADD("measure.campaign.budget_denied", stats.budget_denied);
  AGEO_COUNTER_ADD("measure.campaign.breaker_trips", stats.breaker_trips);
  AGEO_COUNTER_ADD("measure.campaign.breaker_skips", stats.breaker_skips);
  AGEO_COUNTER_ADD("measure.campaign.half_open_probes",
                   stats.half_open_probes);
  AGEO_COUNTER_ADD("measure.campaign.gated_skips", stats.gated_skips);
  AGEO_COUNTER_ADD("measure.campaign.replacements", stats.replacements);
  AGEO_COUNTER_ADD("measure.campaign.tunnel_drops", stats.tunnel_drops);
  AGEO_COUNTER_ADD("measure.campaign.tunnel_reconnects",
                   stats.tunnel_reconnects);
  AGEO_COUNTER_ADD("measure.campaign.tunnel_drift_flags",
                   stats.tunnel_drift_flags);
  AGEO_COUNTER_ADD("measure.campaign.rounds", stats.rounds);
  AGEO_COUNT("measure.campaign.published");
}

BreakerBoard::BreakerBoard(BreakerPolicy policy) : policy_(policy) {
  detail::require(policy_.failure_threshold > 0,
                  "BreakerBoard: failure_threshold must be > 0");
  detail::require(policy_.cooldown_rounds > 0,
                  "BreakerBoard: cooldown_rounds must be > 0");
}

bool BreakerBoard::allows(std::size_t landmark_id) const {
  auto it = entries_.find(landmark_id);
  if (it == entries_.end() || !it->second.open) return true;
  return clock_ >= it->second.open_until;  // half-open trial
}

bool BreakerBoard::is_open(std::size_t landmark_id) const {
  auto it = entries_.find(landmark_id);
  return it != entries_.end() && it->second.open &&
         clock_ < it->second.open_until;
}

bool BreakerBoard::in_half_open(std::size_t landmark_id) const {
  auto it = entries_.find(landmark_id);
  return it != entries_.end() && it->second.open &&
         clock_ >= it->second.open_until;
}

bool BreakerBoard::tracked(std::size_t landmark_id) const {
  return entries_.find(landmark_id) != entries_.end();
}

bool BreakerBoard::record_failure(std::size_t landmark_id) {
  Entry& e = entries_[landmark_id];
  ++e.consecutive_failures;
  if (e.open) {
    // A failed half-open trial: re-open for another cooldown.
    e.open_until =
        clock_ + static_cast<std::uint64_t>(policy_.cooldown_rounds);
    return true;
  }
  if (e.consecutive_failures >= policy_.failure_threshold) {
    e.open = true;
    e.open_until =
        clock_ + static_cast<std::uint64_t>(policy_.cooldown_rounds);
    return true;
  }
  return false;
}

void BreakerBoard::record_success(std::size_t landmark_id) {
  entries_.erase(landmark_id);
}

void BreakerBoard::merge(const BreakerBoard& other) {
  clock_ = std::max(clock_, other.clock_);
  for (const auto& [id, theirs] : other.entries_) {
    auto [it, inserted] = entries_.emplace(id, theirs);
    if (inserted) continue;
    Entry& ours = it->second;
    if (theirs.open && !ours.open) {
      ours = theirs;
    } else if (theirs.open && ours.open) {
      ours.open_until = std::max(ours.open_until, theirs.open_until);
      ours.consecutive_failures =
          std::max(ours.consecutive_failures, theirs.consecutive_failures);
    } else if (!theirs.open && !ours.open) {
      ours.consecutive_failures =
          std::max(ours.consecutive_failures, theirs.consecutive_failures);
    }
    // theirs closed / ours open: ours already the more broken state.
  }
}

void BreakerBoard::drop(std::size_t landmark_id) {
  entries_.erase(landmark_id);
}

std::size_t BreakerBoard::prune(
    const std::function<bool(std::size_t)>& keep) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (!keep(it->first)) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::size_t BreakerBoard::open_count() const {
  std::size_t n = 0;
  for (const auto& [id, e] : entries_)
    if (e.open) ++n;
  return n;
}

}  // namespace ageo::measure
