#include "measure/landmark_service.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ageo::measure {

LandmarkService::LandmarkService(LandmarkServiceConfig config)
    : config_(config), rng_(config.testbed.seed, "landmark-service") {
  detail::require(config_.anchor_decommission_rate >= 0.0 &&
                      config_.anchor_decommission_rate < 1.0,
                  "LandmarkService: bad decommission rate");
  detail::require(config_.anchor_addition_rate >= 0.0,
                  "LandmarkService: bad addition rate");
  detail::require(config_.probe_instability >= 0.0 &&
                      config_.probe_instability < 1.0,
                  "LandmarkService: bad probe instability");
  // Build the constellation with a reserve of future anchors (the 61
  // anchors that joined during the paper's experiment were real machines
  // that existed before RIPE admitted them).
  TestbedConfig tb = config_.testbed;
  int base_anchors = tb.constellation.n_anchors;
  tb.constellation.n_anchors =
      base_anchors + std::max(4, base_anchors / 2);
  bed_ = std::make_unique<Testbed>(tb);

  decommissioned_.assign(bed_->landmarks().size(), false);
  offline_probe_.assign(bed_->landmarks().size(), false);
  // Reserve anchors start decommissioned ("not yet admitted").
  int seen = 0;
  for (std::size_t a : bed_->anchor_ids()) {
    if (seen++ >= base_anchors) decommissioned_[a] = true;
  }
  // Initial probe stability roll.
  for (std::size_t i = 0; i < bed_->landmarks().size(); ++i) {
    if (!bed_->landmarks()[i].is_anchor)
      offline_probe_[i] = rng_.chance(config_.probe_instability);
  }
  rebuild_active();
}

void LandmarkService::rebuild_active() {
  active_.clear();
  for (std::size_t i = 0; i < bed_->landmarks().size(); ++i) {
    if (bed_->landmarks()[i].is_anchor) {
      if (!decommissioned_[i]) active_.push_back(i);
    } else if (!offline_probe_[i]) {
      active_.push_back(i);
    }
  }
}

bool LandmarkService::is_active(std::size_t landmark_id) const {
  detail::require(landmark_id < bed_->landmarks().size(),
                  "LandmarkService: unknown landmark");
  if (bed_->landmarks()[landmark_id].is_anchor)
    return !decommissioned_[landmark_id];
  return !offline_probe_[landmark_id];
}

LandmarkService::RefreshStats LandmarkService::refresh() {
  RefreshStats stats;
  ++epoch_;
  // Decommission a few live anchors...
  std::vector<std::size_t> alive, reserve;
  for (std::size_t a : bed_->anchor_ids()) {
    (decommissioned_[a] ? reserve : alive).push_back(a);
  }
  auto n_out = static_cast<int>(
      std::floor(config_.anchor_decommission_rate *
                     static_cast<double>(alive.size()) +
                 rng_.uniform()));
  for (int k = 0; k < n_out && !alive.empty(); ++k) {
    std::size_t pick = rng_.uniform_index(alive.size());
    decommissioned_[alive[pick]] = true;
    alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
    ++stats.anchors_decommissioned;
  }
  // ...and admit some reserve ones.
  auto n_in = static_cast<int>(
      std::floor(config_.anchor_addition_rate *
                     static_cast<double>(alive.size()) +
                 rng_.uniform()));
  for (int k = 0; k < n_in && !reserve.empty(); ++k) {
    std::size_t pick = rng_.uniform_index(reserve.size());
    decommissioned_[reserve[pick]] = false;
    reserve.erase(reserve.begin() + static_cast<std::ptrdiff_t>(pick));
    ++stats.anchors_added;
  }
  // Re-roll probe stability ("online for the past 30 days").
  for (std::size_t i = 0; i < bed_->landmarks().size(); ++i) {
    if (!bed_->landmarks()[i].is_anchor)
      offline_probe_[i] = rng_.chance(config_.probe_instability);
  }
  // Slide the two-week calibration window: refit on fresh samples.
  bed_->recalibrate();
  rebuild_active();
  stats.active_landmarks = active_.size();
  return stats;
}

std::function<bool(std::size_t)> LandmarkService::active_filter() const {
  return [this](std::size_t landmark_id) { return is_active(landmark_id); };
}

ProbeFn LandmarkService::gate(ProbeFn inner) const {
  return [this, inner = std::move(inner)](
             std::size_t landmark_id) -> std::optional<double> {
    if (!is_active(landmark_id)) return std::nullopt;
    return inner(landmark_id);
  };
}

}  // namespace ageo::measure
