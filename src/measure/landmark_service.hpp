// The landmark service (paper §4.1).
//
// "We maintain a server that retrieves the list of anchors and probes
// from RIPE's database every day, selects the probes to be used as
// landmarks, and updates a delay-distance model for each landmark,
// based on the most recent two weeks of ping measurements."
//
// The constellation is not static either: during the paper's experiment
// 12 anchors were decommissioned and 61 added. This service owns a
// Testbed and evolves it epoch by epoch — decommissioning anchors,
// admitting new ones, rotating which probes are "stable" (online 30
// days with a stable address), and refitting every calibration model —
// so long-running audits measure against a live constellation, as the
// real system did.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "measure/testbed.hpp"
#include "measure/two_phase.hpp"

namespace ageo::measure {

struct LandmarkServiceConfig {
  TestbedConfig testbed;
  /// Per-epoch anchor churn (fractions of the current anchor count).
  double anchor_decommission_rate = 0.01;
  double anchor_addition_rate = 0.05;
  /// Fraction of probes offline (not "stable") in any given epoch.
  double probe_instability = 0.15;
};

class LandmarkService {
 public:
  explicit LandmarkService(LandmarkServiceConfig config = {});

  /// The current epoch's testbed (calibrated against the live
  /// landmark set). Valid until the next refresh().
  Testbed& testbed() noexcept { return *bed_; }
  const Testbed& testbed() const noexcept { return *bed_; }

  int epoch() const noexcept { return epoch_; }

  /// Landmark ids usable this epoch (alive anchors + stable probes).
  /// Decommissioned anchors and offline probes are excluded — exactly
  /// what two_phase_measure should select from.
  const std::vector<std::size_t>& active_landmarks() const noexcept {
    return active_;
  }
  bool is_active(std::size_t landmark_id) const;

  /// Advance one epoch: churn the anchor set, re-roll probe stability,
  /// refit calibration. Counts of decommissioned/added anchors are
  /// returned for logging.
  struct RefreshStats {
    int anchors_decommissioned = 0;
    int anchors_added = 0;
    std::size_t active_landmarks = 0;
  };
  RefreshStats refresh();

  /// A probe wrapper that refuses landmarks not active this epoch, so
  /// campaigns automatically skip dead infrastructure.
  ProbeFn gate(ProbeFn inner) const;

  /// An is-active predicate bound to this service's live epoch state —
  /// wire into CampaignEngine::set_active_filter (and its
  /// prune_breakers) so a campaign spanning refresh() calls never
  /// records an observation from a decommissioned anchor and drops
  /// breaker state for removed landmarks.
  std::function<bool(std::size_t)> active_filter() const;

 private:
  LandmarkServiceConfig config_;
  std::unique_ptr<Testbed> bed_;
  std::vector<bool> decommissioned_;
  std::vector<bool> offline_probe_;
  std::vector<std::size_t> active_;
  int epoch_ = 0;
  Rng rng_;

  void rebuild_active();
};

}  // namespace ageo::measure
