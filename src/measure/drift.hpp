// Per-landmark RTT-drift watchdogs.
//
// A landmark whose reported delays drift away from its calibration
// baseline is either degrading (stale path, congested uplink) or lying
// (BFT-PoLoc's delay-shift adversaries). The watchdog tracks, per
// landmark, an EWMA of the *residual* between each observed one-way
// delay and what the landmark's fitted CBG model predicts for the
// distance actually involved:
//
//   residual_ms = observed_delay_ms
//               - (intercept_ms + slope_ms_per_km * distance_km)
//
// The bestline fit is a lower envelope of the calibration cloud, so an
// honest landmark's residuals are small and non-negative on average.
// A deflating attacker (shrinking its disks to frame a fake region)
// drives the residual strongly negative — physically impossible under
// an honest fit — while an inflating one pushes it far positive. The
// thresholds are therefore asymmetric: a little negative drift is
// damning, positive drift needs a wide margin before it beats honest
// queueing noise.
//
// Determinism: observe() is plain arithmetic with no clock or RNG; fed
// in a fixed order (the audit's serial epilogue walks proxies in host
// index order) the entries and flag set are bit-identical across
// thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ageo::measure {

struct DriftConfig {
  /// EWMA smoothing factor in (0, 1]; 1 = last sample only.
  double ewma_alpha = 0.25;
  /// Flag when the EWMA residual <= -deflate_ms (impossible-fast
  /// replies). Tight: honest bestline residuals are non-negative up to
  /// the centroid's grid-cell error (~2-3 ms), and the per-landmark
  /// EWMA averages that error across independent proxies, so a
  /// sustained -5 ms is physically inconsistent with an honest fit.
  double deflate_ms = 5.0;
  /// Flag when the EWMA residual >= +inflate_ms (delays far above the
  /// fit). Wide: honest paths wander tens of ms above the envelope.
  double inflate_ms = 150.0;
  /// No verdict before this many samples (EWMA still warming up).
  std::uint64_t min_samples = 8;
};

/// One landmark's running drift state.
struct DriftEntry {
  std::uint64_t samples = 0;
  double ewma_ms = 0.0;  ///< EWMA of the residual; 0 until first sample
  double min_ms = 0.0;   ///< extreme residuals seen (0 when no samples)
  double max_ms = 0.0;

  friend bool operator==(const DriftEntry&, const DriftEntry&) = default;
};

class DriftWatchdog {
 public:
  explicit DriftWatchdog(std::size_t n_landmarks, DriftConfig cfg = {});

  /// Fold one residual into the landmark's EWMA. Out-of-range ids and
  /// non-finite residuals are ignored (telemetry must degrade, never
  /// abort).
  void observe(std::size_t landmark_id, double residual_ms) noexcept;

  const DriftConfig& config() const noexcept { return cfg_; }
  const std::vector<DriftEntry>& entries() const noexcept { return entries_; }

  /// Whether this landmark's EWMA has crossed a threshold (with enough
  /// samples to trust it).
  bool is_flagged(std::size_t landmark_id) const noexcept;

  /// Every flagged landmark id, ascending.
  std::vector<std::size_t> flagged() const;

 private:
  DriftConfig cfg_;
  std::vector<DriftEntry> entries_;
};

}  // namespace ageo::measure
