#include "measure/two_phase.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace ageo::measure {

namespace {
/// Minimum of `attempts` probes of a landmark, or nullopt if all failed.
std::optional<double> min_probe(const ProbeFn& probe, std::size_t id,
                                int attempts) {
  std::optional<double> best;
  for (int i = 0; i < attempts; ++i) {
    auto m = probe(id);
    AGEO_COUNT("measure.raw_probes");
    if (m) {
      // Simulated round-trip time: seed-derived, so the histogram is
      // deterministic across thread counts.
      AGEO_HIST("measure.rtt_ms", *m, 0.5, 4096.0);
    } else {
      AGEO_COUNT("measure.raw_probe_failures");
    }
    if (m && (!best || *m < *best)) best = m;
  }
  return best;
}
}  // namespace

TwoPhaseResult two_phase_measure(const Testbed& bed, const ProbeFn& probe,
                                 Rng& rng, const TwoPhaseConfig& cfg) {
  AGEO_SPAN("measure", "two_phase");
  AGEO_COUNT("measure.two_phase.runs");
  detail::require(cfg.anchors_per_continent > 0 && cfg.phase2_landmarks > 0 &&
                      cfg.attempts > 0,
                  "two_phase_measure: invalid config");
  TwoPhaseResult result;
  const auto& landmarks = bed.landmarks();

  // ---- Phase 1: three anchors per continent ----
  double best_delay = std::numeric_limits<double>::infinity();
  for (std::size_t cont = 0; cont < world::kContinentCount; ++cont) {
    auto continent = static_cast<world::Continent>(cont);
    // Collect this continent's anchors, then sample without replacement.
    std::vector<std::size_t> pool;
    for (std::size_t a : bed.anchor_ids())
      if (landmarks[a].continent == continent) pool.push_back(a);
    int want = std::min<int>(cfg.anchors_per_continent,
                             static_cast<int>(pool.size()));
    for (int k = 0; k < want; ++k) {
      std::size_t pick = rng.uniform_index(pool.size() - static_cast<std::size_t>(k));
      std::swap(pool[pick], pool[pool.size() - 1 - static_cast<std::size_t>(k)]);
      std::size_t id = pool[pool.size() - 1 - static_cast<std::size_t>(k)];
      auto m = min_probe(probe, id, 1);
      if (!m) continue;
      result.phase1.push_back(
          {id, landmarks[id].location, *m / 2.0});
      if (*m < best_delay) {
        best_delay = *m;
        result.continent = continent;
      }
    }
  }

  // ---- Phase 2: 25 random landmarks on the chosen continent ----
  std::vector<std::size_t> pool;
  for (std::size_t i = 0; i < landmarks.size(); ++i)
    if (landmarks[i].continent == result.continent) pool.push_back(i);
  // Fisher–Yates partial shuffle.
  std::size_t want = std::min<std::size_t>(
      static_cast<std::size_t>(cfg.phase2_landmarks), pool.size());
  for (std::size_t k = 0; k < want; ++k) {
    std::size_t pick = k + rng.uniform_index(pool.size() - k);
    std::swap(pool[k], pool[pick]);
    std::size_t id = pool[k];
    auto m = min_probe(probe, id, cfg.attempts);
    if (!m) continue;
    result.observations.push_back({id, landmarks[id].location, *m / 2.0});
    result.landmark_ids.push_back(id);
  }
  return result;
}

std::vector<algos::Observation> full_scan_measure(const Testbed& bed,
                                                  const ProbeFn& probe,
                                                  int attempts) {
  AGEO_SPAN("measure", "full_scan");
  detail::require(attempts > 0, "full_scan_measure: attempts must be > 0");
  std::vector<algos::Observation> out;
  const auto& landmarks = bed.landmarks();
  for (std::size_t a : bed.anchor_ids()) {
    auto m = min_probe(probe, a, attempts);
    if (!m) continue;
    out.push_back({a, landmarks[a].location, *m / 2.0});
  }
  return out;
}

}  // namespace ageo::measure
