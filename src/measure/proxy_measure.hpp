// Measuring through proxies (paper §5.3, Figs. 12-13).
//
// A connect through the tunnel measures RTT(client, proxy) +
// RTT(proxy, landmark). The client-proxy leg is estimated by pinging the
// client's own public address through the tunnel — which crosses the
// tunnel twice, so the estimate is scaled by eta, the robust-regression
// slope of direct against indirect RTTs over the (few) proxies that
// answer direct pings. The paper measures eta = 0.49 with R^2 > 0.99.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "measure/testbed.hpp"
#include "measure/two_phase.hpp"
#include "netsim/proxy.hpp"
#include "stats/regression.hpp"

namespace ageo::measure {

struct EtaEstimate {
  double eta = 0.5;
  double r_squared = 0.0;
  std::size_t n_proxies = 0;
  /// 95% bootstrap confidence interval over proxies (equal to eta when
  /// too few proxies were pingable to resample).
  double eta_ci_low = 0.5;
  double eta_ci_high = 0.5;
};

/// Estimate eta from every session whose proxy answers direct pings.
/// `samples` pings of each kind per proxy; minima are regressed
/// (Theil–Sen, robust). Returns the default eta = 0.5 with n_proxies == 0
/// when fewer than 3 proxies are pingable.
EtaEstimate estimate_eta(std::span<netsim::ProxySession> sessions,
                         int samples = 5);

/// Probe adapter: measures landmarks through one proxy and subtracts the
/// estimated client-proxy RTT.
class ProxyProber {
 public:
  /// Takes `self_ping_samples` tunnel self-pings up front; their minimum
  /// times eta estimates the client-proxy RTT.
  ProxyProber(const Testbed& bed, netsim::ProxySession& session, double eta,
              int self_ping_samples = 5);

  /// Corrected RTT(proxy, landmark), ms; nullopt when the landmark
  /// filtered the connection. Corrections that come out negative are
  /// clamped to a small positive floor (they mean the tunnel estimate
  /// ate the whole measurement — keep the observation maximally
  /// uninformative rather than impossible).
  std::optional<double> operator()(std::size_t landmark_id);

  /// A ProbeFn view of this prober.
  ProbeFn as_probe_fn();

  double tunnel_rtt_ms() const noexcept { return tunnel_rtt_ms_; }

 private:
  const Testbed* bed_;
  netsim::ProxySession* session_;
  double eta_;
  double tunnel_rtt_ms_ = 0.0;
};

}  // namespace ageo::measure
