// Measuring through proxies (paper §5.3, Figs. 12-13).
//
// A connect through the tunnel measures RTT(client, proxy) +
// RTT(proxy, landmark). The client-proxy leg is estimated by pinging the
// client's own public address through the tunnel — which crosses the
// tunnel twice, so the estimate is scaled by eta, the robust-regression
// slope of direct against indirect RTTs over the (few) proxies that
// answer direct pings. The paper measures eta = 0.49 with R^2 > 0.99.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "measure/testbed.hpp"
#include "measure/two_phase.hpp"
#include "netsim/proxy.hpp"
#include "stats/regression.hpp"

namespace ageo::measure {

struct EtaEstimate {
  double eta = 0.5;
  double r_squared = 0.0;
  std::size_t n_proxies = 0;
  /// 95% bootstrap confidence interval over proxies (equal to eta when
  /// too few proxies were pingable to resample).
  double eta_ci_low = 0.5;
  double eta_ci_high = 0.5;
};

/// Estimate eta from every session whose proxy answers direct pings.
/// `samples` pings of each kind per proxy; minima are regressed
/// (Theil–Sen, robust). Returns the default eta = 0.5 with n_proxies == 0
/// when fewer than 3 proxies are pingable.
EtaEstimate estimate_eta(std::span<netsim::ProxySession> sessions,
                         int samples = 5);

/// Probe adapter: measures landmarks through one proxy and subtracts the
/// estimated client-proxy RTT.
class ProxyProber {
 public:
  /// Corrections that come out negative are clamped to this floor, ms.
  static constexpr double kCorrectionFloorMs = 0.05;

  /// Takes `self_ping_samples` tunnel self-pings up front; their minimum
  /// times eta estimates the client-proxy RTT.
  ProxyProber(const Testbed& bed, netsim::ProxySession& session, double eta,
              int self_ping_samples = 5);

  /// Corrected RTT(proxy, landmark), ms; nullopt when the landmark
  /// filtered the connection. Corrections that come out negative are
  /// clamped to kCorrectionFloorMs (they mean the tunnel estimate
  /// ate the whole measurement — keep the observation maximally
  /// uninformative rather than impossible).
  std::optional<double> operator()(std::size_t landmark_id);

  /// Like operator(), but distinguishes accepted / refused-but-measured
  /// / timed-out connects for campaign telemetry.
  ProbeReply rich_probe(std::size_t landmark_id);

  /// A ProbeFn view of this prober.
  ProbeFn as_probe_fn();
  /// A RichProbeFn view of this prober.
  RichProbeFn as_rich_probe_fn();

  double tunnel_rtt_ms() const noexcept { return tunnel_rtt_ms_; }

  netsim::ProxySession& session() noexcept { return *session_; }
  const netsim::ProxySession& session() const noexcept { return *session_; }

  /// Re-take the tunnel self-ping (after a reconnect) and replace the
  /// client-proxy RTT estimate. Returns the new estimate, or nullopt —
  /// leaving the old estimate in place — when the tunnel is down.
  std::optional<double> retake_self_ping(int samples = 5);

 private:
  const Testbed* bed_;
  netsim::ProxySession* session_;
  double eta_;
  double tunnel_rtt_ms_ = 0.0;
};

}  // namespace ageo::measure
