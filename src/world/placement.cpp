#include "world/placement.hpp"

#include <algorithm>
#include <cmath>

#include "geo/geodesy.hpp"

namespace ageo::world {

double country_radius_km(const WorldModel& w, CountryId id) {
  const Country& c = w.country(id);
  double dlat_km = (c.shape.max_lat() - c.shape.min_lat()) * 111.2 / 2.0;
  // Estimate the east-west half extent at the capital's latitude from the
  // vertex span.
  auto vs = c.shape.vertices();
  double min_l = vs[0].lon_deg, max_l = vs[0].lon_deg;
  for (const auto& v : vs) {
    double d = std::remainder(v.lon_deg - vs[0].lon_deg, 360.0);
    min_l = std::min(min_l, vs[0].lon_deg + d);
    max_l = std::max(max_l, vs[0].lon_deg + d);
  }
  double dlon_km = (max_l - min_l) * 111.2 *
                   std::cos(geo::deg_to_rad(c.capital.lat_deg)) / 2.0;
  return std::max(10.0, std::hypot(dlat_km, dlon_km));
}

geo::LatLon random_point_in_country(const WorldModel& w, CountryId id,
                                    Rng& rng) {
  const Country& c = w.country(id);
  const double spread = country_radius_km(w, id) * 0.45;
  for (int attempt = 0; attempt < 32; ++attempt) {
    double bearing = rng.uniform(0.0, 360.0);
    double dist = std::abs(rng.normal(0.0, spread));
    geo::LatLon p = geo::destination(c.capital, bearing, dist);
    if (w.country_at(p) == id) return p;
  }
  return c.capital;
}

}  // namespace ageo::world
