#include "world/crowd.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "world/placement.hpp"

namespace ageo::world {

namespace {
struct Share {
  Continent continent;
  double share;
};
// Fig. 8: majority Europe/North America, "enough contributors elsewhere
// for statistics".
constexpr std::array<Share, 8> kCrowdShares = {{
    {Continent::kEurope, 0.34},
    {Continent::kNorthAmerica, 0.30},
    {Continent::kAsia, 0.14},
    {Continent::kSouthAmerica, 0.08},
    {Continent::kAfrica, 0.05},
    {Continent::kOceania, 0.03},
    {Continent::kAustralia, 0.04},
    {Continent::kCentralAmerica, 0.02},
}};

CountryId pick_country_weighted(const WorldModel& w, Continent continent,
                                Rng& rng) {
  // Crowd workers live where people live; weight by a population proxy
  // (hosting score is correlated enough for this purpose, floored so
  // poorer countries still appear).
  double total = 0.0;
  for (CountryId i = 0; i < w.country_count(); ++i)
    if (w.country(i).continent == continent)
      total += 0.15 + w.country(i).hosting_score;
  double r = rng.uniform(0.0, total);
  for (CountryId i = 0; i < w.country_count(); ++i) {
    if (w.country(i).continent != continent) continue;
    r -= 0.15 + w.country(i).hosting_score;
    if (r <= 0.0) return i;
  }
  for (CountryId i = 0; i < w.country_count(); ++i)
    if (w.country(i).continent == continent) return i;
  throw InvalidArgument("generate_crowd: empty continent");
}

double round2(double v) { return std::round(v * 100.0) / 100.0; }
}  // namespace

std::vector<CrowdHost> generate_crowd(const WorldModel& w,
                                      const CrowdConfig& cfg) {
  detail::require(cfg.n_volunteers >= 0 && cfg.n_turkers >= 0,
                  "generate_crowd: negative counts");
  Rng rng(cfg.seed, "crowd");
  std::vector<CrowdHost> out;
  int total = cfg.n_volunteers + cfg.n_turkers;
  out.reserve(static_cast<std::size_t>(total));

  int made = 0;
  for (std::size_t s = 0; s < kCrowdShares.size(); ++s) {
    int count = (s + 1 == kCrowdShares.size())
                    ? total - made
                    : static_cast<int>(kCrowdShares[s].share * total);
    for (int i = 0; i < count; ++i) {
      CrowdHost h;
      h.continent = kCrowdShares[s].continent;
      h.country = pick_country_weighted(w, h.continent, rng);
      h.true_location = random_point_in_country(w, h.country, rng);
      h.reported_location =
          geo::LatLon{round2(h.true_location.lat_deg),
                      round2(h.true_location.lon_deg)};
      h.is_volunteer = made < cfg.n_volunteers;
      // "Most of our crowdsourced contributors used the web application
      // under Windows" (§5).
      h.os = rng.chance(0.78) ? ClientOs::kWindows : ClientOs::kLinux;
      if (h.os == ClientOs::kWindows) {
        double b = rng.uniform();
        h.browser = b < 0.55   ? Browser::kChrome
                    : b < 0.85 ? Browser::kFirefox
                               : Browser::kEdge;
      } else {
        h.browser = rng.chance(0.6) ? Browser::kChrome : Browser::kFirefox;
      }
      h.net_quality = rng.uniform(0.35, 0.85);
      out.push_back(h);
      ++made;
    }
  }
  return out;
}

}  // namespace ageo::world
