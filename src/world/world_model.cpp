#include "world/world_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "geo/geodesy.hpp"
#include "geo/units.hpp"
#include "grid/raster.hpp"

namespace ageo::world {

namespace {
/// Rough relative size of a country's box, for overlap resolution.
double shape_extent(const Country& c) {
  double dlat = c.shape.max_lat() - c.shape.min_lat();
  // Approximate longitudinal extent from vertices.
  auto vs = c.shape.vertices();
  double min_lon = vs[0].lon_deg, max_lon = vs[0].lon_deg;
  // Vertices were produced by box_polygon, so their longitudes only span
  // < 360 degrees; unwrap relative to the first.
  for (const auto& v : vs) {
    double d = std::remainder(v.lon_deg - vs[0].lon_deg, 360.0);
    min_lon = std::min(min_lon, vs[0].lon_deg + d);
    max_lon = std::max(max_lon, vs[0].lon_deg + d);
  }
  double mid_lat = (c.shape.max_lat() + c.shape.min_lat()) / 2.0;
  return dlat * (max_lon - min_lon) * std::cos(geo::deg_to_rad(mid_lat));
}
}  // namespace

CountryRaster::CountryRaster(const grid::Grid& g,
                             std::vector<CountryId> cells)
    : grid_(&g), cells_(std::move(cells)) {
  detail::require(cells_.size() == g.size(),
                  "CountryRaster: cell count mismatch");
}

std::vector<CountryId> CountryRaster::countries_in(
    const grid::Region& region) const {
  detail::require(region.grid() == grid_,
                  "CountryRaster: region grid mismatch");
  std::vector<bool> seen;
  std::vector<CountryId> out;
  region.for_each_cell([&](std::size_t idx) {
    CountryId c = cells_[idx];
    if (c == kNoCountry) return;
    if (c >= seen.size()) seen.resize(c + 1, false);
    if (!seen[c]) {
      seen[c] = true;
      out.push_back(c);
    }
  });
  return out;
}

bool CountryRaster::region_touches(const grid::Region& region,
                                   CountryId country) const {
  detail::require(region.grid() == grid_,
                  "CountryRaster: region grid mismatch");
  bool found = false;
  region.for_each_cell([&](std::size_t idx) {
    if (cells_[idx] == country) found = true;
  });
  return found;
}

WorldModel::WorldModel() {
  countries_.reserve(builtin_country_specs().size());
  for (const auto& spec : builtin_country_specs())
    countries_.push_back(make_country(spec));
  build_indexes();
}

WorldModel::WorldModel(std::vector<Country> countries)
    : countries_(std::move(countries)) {
  detail::require(!countries_.empty(), "WorldModel: need at least 1 country");
  build_indexes();
}

void WorldModel::build_indexes() {
  by_area_.resize(countries_.size());
  for (std::size_t i = 0; i < countries_.size(); ++i) by_area_[i] = i;
  std::sort(by_area_.begin(), by_area_.end(),
            [&](std::size_t a, std::size_t b) {
              return shape_extent(countries_[a]) < shape_extent(countries_[b]);
            });

  // Data centers: capitals of countries where hosting is plausible,
  // plus secondary sites in the cheapest-hosting countries (mirrors how
  // real facilities cluster in the US/EU).
  data_centers_.clear();
  for (std::size_t i = 0; i < countries_.size(); ++i) {
    const Country& c = countries_[i];
    if (c.hosting_score < 0.15) continue;
    data_centers_.push_back(
        DataCenter{c.name + " DC1", c.capital, static_cast<CountryId>(i)});
    if (c.hosting_score >= 0.75) {
      // A second facility displaced a few hundred km from the capital.
      geo::LatLon second = geo::destination(c.capital, 135.0, 350.0);
      if (country_at(second) == static_cast<CountryId>(i)) {
        data_centers_.push_back(DataCenter{c.name + " DC2", second,
                                           static_cast<CountryId>(i)});
      }
    }
  }
}

const Country& WorldModel::country(CountryId id) const {
  detail::require(id < countries_.size(), "WorldModel: bad country id");
  return countries_[id];
}

std::optional<CountryId> WorldModel::find_country(
    std::string_view code) const noexcept {
  for (std::size_t i = 0; i < countries_.size(); ++i)
    if (countries_[i].code == code) return static_cast<CountryId>(i);
  return std::nullopt;
}

CountryId WorldModel::country_at(const geo::LatLon& p) const noexcept {
  for (std::size_t i : by_area_) {
    if (countries_[i].shape.contains(p)) return static_cast<CountryId>(i);
  }
  return kNoCountry;
}

Continent WorldModel::continent_of(CountryId id) const {
  return country(id).continent;
}

grid::Region WorldModel::land_mask(const grid::Grid& g) const {
  grid::Region out(g);
  for (const auto& c : countries_) out |= grid::rasterize_polygon(g, c.shape);
  // Tiny countries can fall between cell centers on coarse grids; make
  // sure every country contributes at least its capital's cell, so "on
  // land" never excludes a claimable country outright (the paper keeps
  // even the smallest islands, §3).
  for (const auto& c : countries_) out.set(g.cell_at(c.capital));
  return out;
}

grid::Region WorldModel::plausibility_mask(const grid::Grid& g) const {
  grid::Region band = grid::rasterize_lat_band(g, geo::kMinPlausibleLatDeg,
                                               geo::kMaxPlausibleLatDeg);
  grid::Region land = land_mask(g);
  land &= band;
  return land;
}

grid::Region WorldModel::country_region(const grid::Grid& g,
                                        CountryId id) const {
  grid::Region r = grid::rasterize_polygon(g, country(id).shape);
  // Remove cells that a smaller overlapping country owns.
  CountryRaster raster = country_raster(g);
  grid::Region out(g);
  r.for_each_cell([&](std::size_t idx) {
    if (raster.at(idx) == id) out.set(idx);
  });
  out.set(g.cell_at(country(id).capital));
  return out;
}

CountryRaster WorldModel::country_raster(const grid::Grid& g) const {
  std::vector<CountryId> cells(g.size(), kNoCountry);
  // Paint from largest to smallest so small countries overwrite big ones.
  for (auto it = by_area_.rbegin(); it != by_area_.rend(); ++it) {
    std::size_t i = *it;
    grid::Region r = grid::rasterize_polygon(g, countries_[i].shape);
    r.for_each_cell(
        [&](std::size_t idx) { cells[idx] = static_cast<CountryId>(i); });
  }
  // Guarantee every capital's cell maps to its own country.
  for (std::size_t i = 0; i < countries_.size(); ++i)
    cells[g.cell_at(countries_[i].capital)] = static_cast<CountryId>(i);
  return CountryRaster(g, std::move(cells));
}

std::vector<const DataCenter*> WorldModel::data_centers_in(
    const grid::Region& region) const {
  std::vector<const DataCenter*> out;
  for (const auto& dc : data_centers_)
    if (region.contains(dc.location)) out.push_back(&dc);
  return out;
}

}  // namespace ageo::world
