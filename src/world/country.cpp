#include "world/country.hpp"

namespace ageo::world {

namespace {
using C = Continent;

// Coarse bounding boxes of real countries. hosting_score encodes how easy
// and attractive it is to lease servers there (paper §1/§6: proxies
// concentrate in countries where hosting is cheap and reliable).
// clang-format off
const std::vector<CountrySpec> kSpecs = {
    // -------- Europe --------
    {"de", "Germany",        C::kEurope, 47.30,   5.90, 55.10,  15.00, 52.50,  13.40, 0.95},
    {"nl", "Netherlands",    C::kEurope, 50.80,   3.40, 53.50,   7.20, 52.37,   4.90, 0.95},
    {"gb", "United Kingdom", C::kEurope, 49.90,  -8.20, 58.70,   1.80, 51.50,  -0.13, 0.92},
    {"fr", "France",         C::kEurope, 42.30,  -4.80, 51.10,   8.20, 48.85,   2.35, 0.85},
    {"cz", "Czechia",        C::kEurope, 48.55,  12.10, 51.06,  18.87, 50.08,  14.44, 0.90},
    {"pl", "Poland",         C::kEurope, 49.00,  14.12, 54.84,  24.15, 52.23,  21.01, 0.60},
    {"be", "Belgium",        C::kEurope, 49.50,   2.55, 51.50,   6.40, 50.85,   4.35, 0.60},
    {"lu", "Luxembourg",     C::kEurope, 49.45,   5.70, 50.18,   6.53, 49.60,   6.13, 0.50},
    {"at", "Austria",        C::kEurope, 46.37,   9.53, 49.02,  17.16, 48.21,  16.37, 0.55},
    {"ch", "Switzerland",    C::kEurope, 45.82,   5.96, 47.81,  10.49, 47.38,   8.54, 0.80},
    {"it", "Italy",          C::kEurope, 36.65,   6.62, 47.10,  18.52, 45.46,   9.19, 0.55},
    {"va", "Vatican",        C::kEurope, 41.890, 12.440, 41.910, 12.460, 41.90, 12.45, 0.00},
    {"es", "Spain",          C::kEurope, 36.90,  -9.30, 43.79,   3.32, 40.42,  -3.70, 0.55},
    {"pt", "Portugal",       C::kEurope, 36.95,  -9.50, 42.15,  -6.19, 38.72,  -9.14, 0.40},
    {"se", "Sweden",         C::kEurope, 55.34,  11.10, 69.06,  24.17, 59.33,  18.07, 0.75},
    {"no", "Norway",         C::kEurope, 57.98,   4.65, 71.19,  31.08, 59.91,  10.75, 0.50},
    {"fi", "Finland",        C::kEurope, 59.81,  20.55, 70.09,  31.59, 60.17,  24.94, 0.50},
    {"dk", "Denmark",        C::kEurope, 54.56,   8.07, 57.75,  12.69, 55.68,  12.57, 0.50},
    {"ie", "Ireland",        C::kEurope, 51.42, -10.48, 55.39,  -5.99, 53.35,  -6.26, 0.60},
    {"ro", "Romania",        C::kEurope, 43.62,  20.26, 48.27,  29.70, 44.43,  26.10, 0.55},
    {"bg", "Bulgaria",       C::kEurope, 41.23,  22.36, 44.22,  28.61, 42.70,  23.32, 0.45},
    {"gr", "Greece",         C::kEurope, 34.80,  19.37, 41.75,  28.25, 37.98,  23.73, 0.35},
    {"hu", "Hungary",        C::kEurope, 45.74,  16.45, 48.59,  22.90, 47.50,  19.04, 0.45},
    {"sk", "Slovakia",       C::kEurope, 47.73,  16.83, 49.61,  22.57, 48.15,  17.11, 0.35},
    {"ua", "Ukraine",        C::kEurope, 44.30,  22.14, 52.38,  40.23, 50.45,  30.52, 0.35},
    {"ru", "Russia",         C::kEurope, 41.20,  27.30, 77.00, 179.00, 55.75,  37.62, 0.50},
    {"lv", "Latvia",         C::kEurope, 55.67,  20.97, 58.08,  28.24, 56.95,  24.10, 0.50},
    {"lt", "Lithuania",      C::kEurope, 53.90,  20.94, 56.45,  26.84, 54.69,  25.28, 0.40},
    {"ee", "Estonia",        C::kEurope, 57.51,  21.84, 59.68,  28.21, 59.44,  24.75, 0.45},
    {"rs", "Serbia",         C::kEurope, 42.23,  18.83, 46.19,  23.01, 44.79,  20.45, 0.35},
    {"hr", "Croatia",        C::kEurope, 42.38,  13.50, 46.55,  19.45, 45.81,  15.98, 0.30},
    {"si", "Slovenia",       C::kEurope, 45.42,  13.38, 46.88,  15.70, 46.06,  14.51, 0.30},
    {"tr", "Turkey",         C::kEurope, 35.82,  26.04, 42.14,  44.79, 41.01,  28.98, 0.40},
    {"is", "Iceland",        C::kEurope, 63.30, -24.55, 66.57, -13.50, 64.15, -21.94, 0.35},
    {"md", "Moldova",        C::kEurope, 45.47,  26.62, 48.49,  30.16, 47.01,  28.86, 0.25},
    // -------- Africa (incl. Middle East, per paper Appendix A) --------
    {"za", "South Africa",   C::kAfrica, -34.84, 16.45, -22.13, 32.89, -26.20,  28.05, 0.50},
    {"eg", "Egypt",          C::kAfrica,  21.99, 24.70,  31.67, 36.89,  30.04,  31.24, 0.30},
    {"ng", "Nigeria",        C::kAfrica,   4.27,  2.67,  13.89, 14.68,   6.52,   3.38, 0.25},
    {"ke", "Kenya",          C::kAfrica,  -4.68, 33.91,   5.51, 41.91,  -1.29,  36.82, 0.30},
    {"ma", "Morocco",        C::kAfrica,  27.66,-13.17,  35.92, -0.99,  33.57,  -7.59, 0.20},
    {"dz", "Algeria",        C::kAfrica,  18.97, -8.67,  37.09, 12.00,  36.75,   3.06, 0.15},
    {"tn", "Tunisia",        C::kAfrica,  30.23,  7.52,  37.35, 11.60,  36.80,  10.18, 0.15},
    {"gh", "Ghana",          C::kAfrica,   4.71, -3.26,  11.17,  1.20,   5.60,  -0.19, 0.15},
    {"sn", "Senegal",        C::kAfrica,  12.31,-17.53,  16.69,-11.36,  14.72, -17.47, 0.10},
    {"il", "Israel",         C::kAfrica,  29.50, 34.27,  33.28, 35.90,  32.07,  34.78, 0.50},
    {"ae", "UAE",            C::kAfrica,  22.63, 51.58,  26.08, 56.38,  25.20,  55.27, 0.45},
    {"sa", "Saudi Arabia",   C::kAfrica,  16.35, 34.50,  32.16, 55.67,  24.71,  46.68, 0.20},
    {"et", "Ethiopia",       C::kAfrica,   3.40, 33.00,  14.90, 48.00,   9.03,  38.74, 0.10},
    {"tz", "Tanzania",       C::kAfrica, -11.70, 29.30,  -0.95, 40.40,  -6.79,  39.21, 0.10},
    {"mu", "Mauritius",      C::kAfrica, -20.50, 57.30, -19.90, 57.80, -20.16,  57.50, 0.20},
    {"mg", "Madagascar",     C::kAfrica, -25.60, 43.20, -11.90, 50.50, -18.88,  47.51, 0.05},
    // -------- Asia --------
    {"cn", "China",          C::kAsia,  18.16,  73.50, 53.56, 134.77, 31.23, 121.47, 0.35},
    {"jp", "Japan",          C::kAsia,  30.97, 129.40, 45.55, 145.82, 35.68, 139.69, 0.80},
    {"kr", "South Korea",    C::kAsia,  33.11, 125.89, 38.61, 129.58, 37.57, 126.98, 0.60},
    {"kp", "North Korea",    C::kAsia,  37.67, 124.32, 43.01, 130.69, 39.03, 125.75, 0.00},
    {"in", "India",          C::kAsia,   6.75,  68.16, 35.50,  97.40, 19.08,  72.88, 0.50},
    {"sg", "Singapore",      C::kAsia,   1.16, 103.60,  1.47, 104.09,  1.35, 103.82, 0.90},
    {"hk", "Hong Kong",      C::kAsia,  22.15, 113.84, 22.56, 114.44, 22.32, 114.17, 0.85},
    {"tw", "Taiwan",         C::kAsia,  21.90, 120.03, 25.30, 122.00, 25.03, 121.56, 0.45},
    {"th", "Thailand",       C::kAsia,   5.61,  97.34, 20.46, 105.64, 13.76, 100.50, 0.40},
    {"vn", "Vietnam",        C::kAsia,   8.56, 102.14, 23.39, 109.47, 21.03, 105.85, 0.30},
    {"id", "Indonesia",      C::kAsia, -10.96,  95.00,  5.90, 141.02, -6.21, 106.85, 0.35},
    {"ph", "Philippines",    C::kAsia,   4.64, 116.93, 21.12, 126.60, 14.60, 120.98, 0.30},
    {"kz", "Kazakhstan",     C::kAsia,  40.57,  46.49, 55.44,  87.31, 43.22,  76.85, 0.15},
    {"pk", "Pakistan",       C::kAsia,  23.69,  60.87, 37.08,  77.84, 24.86,  67.00, 0.15},
    {"bd", "Bangladesh",     C::kAsia,  20.74,  88.08, 26.63,  92.67, 23.81,  90.41, 0.10},
    {"ir", "Iran",           C::kAsia,  25.06,  44.04, 39.78,  63.32, 35.69,  51.39, 0.10},
    {"mn", "Mongolia",       C::kAsia,  41.60,  87.75, 52.15, 119.77, 47.89, 106.91, 0.05},
    {"lk", "Sri Lanka",      C::kAsia,   5.92,  79.70,  9.83,  81.88,  6.93,  79.85, 0.10},
    // -------- Oceania (incl. Malaysia and New Zealand, per paper) --------
    {"my", "Malaysia",       C::kOceania,   0.85,  99.64,  7.36, 119.27,  3.14, 101.69, 0.45},
    {"nz", "New Zealand",    C::kOceania, -47.29, 166.43,-34.39, 178.58,-36.85, 174.76, 0.50},
    {"fj", "Fiji",           C::kOceania, -19.20, 177.00,-16.10, 180.00,-18.14, 178.44, 0.05},
    {"pg", "Papua N.G.",     C::kOceania, -10.70, 140.80, -1.30, 155.90, -9.44, 147.18, 0.02},
    {"gu", "Guam",           C::kOceania,  13.20, 144.60, 13.70, 145.00, 13.47, 144.75, 0.10},
    {"pn", "Pitcairn",       C::kOceania, -25.10,-130.80,-23.90,-124.80,-25.07,-130.10, 0.00},
    // -------- Australia --------
    {"au", "Australia",      C::kAustralia, -43.64, 113.16, -10.67, 153.61, -33.87, 151.21, 0.70},
    // -------- North America --------
    {"us", "United States",  C::kNorthAmerica, 24.54, -124.77, 49.38, -66.95, 39.04, -77.49, 1.00},
    {"ca", "Canada",         C::kNorthAmerica, 41.68, -141.00, 69.60, -52.62, 49.90, -97.14, 0.80},
    {"gl", "Greenland",      C::kNorthAmerica, 59.80,  -73.30, 83.60, -11.30, 64.18, -51.72, 0.00},
    // -------- Central America (incl. Mexico and Caribbean) --------
    {"mx", "Mexico",         C::kCentralAmerica, 14.53, -117.13, 32.72, -86.74, 19.43, -99.13, 0.40},
    {"pa", "Panama",         C::kCentralAmerica,  7.20,  -83.05,  9.65, -77.17,  8.98, -79.52, 0.25},
    {"cr", "Costa Rica",     C::kCentralAmerica,  8.02,  -85.95, 11.22, -82.55,  9.93, -84.08, 0.20},
    {"cu", "Cuba",           C::kCentralAmerica, 19.83,  -84.95, 23.19, -74.13, 23.11, -82.37, 0.05},
    {"do", "Dominican Rep.", C::kCentralAmerica, 17.54,  -71.95, 19.93, -68.32, 18.47, -69.89, 0.10},
    {"gt", "Guatemala",      C::kCentralAmerica, 13.74,  -92.23, 17.82, -88.22, 14.63, -90.51, 0.10},
    {"jm", "Jamaica",        C::kCentralAmerica, 17.70,  -78.37, 18.53, -76.19, 18.00, -76.79, 0.10},
    {"bs", "Bahamas",        C::kCentralAmerica, 22.85,  -78.99, 26.92, -74.42, 25.06, -77.35, 0.10},
    {"pr", "Puerto Rico",    C::kCentralAmerica, 17.93,  -67.24, 18.52, -65.59, 18.47, -66.11, 0.20},
    {"vg", "Br. Virgin Is.", C::kCentralAmerica, 18.30,  -64.85, 18.75, -64.27, 18.43, -64.62, 0.05},
    // -------- South America --------
    {"br", "Brazil",         C::kSouthAmerica, -33.75, -73.99,   5.27, -34.79, -23.55, -46.63, 0.55},
    {"ar", "Argentina",      C::kSouthAmerica, -55.06, -73.58, -21.78, -53.64, -34.60, -58.38, 0.35},
    {"cl", "Chile",          C::kSouthAmerica, -55.92, -75.64, -17.51, -66.96, -33.45, -70.67, 0.35},
    {"co", "Colombia",       C::kSouthAmerica,  -4.23, -79.00,  12.46, -66.87,   4.71, -74.07, 0.30},
    {"pe", "Peru",           C::kSouthAmerica, -18.35, -81.33,  -0.04, -68.67, -12.05, -77.04, 0.20},
    {"ve", "Venezuela",      C::kSouthAmerica,   0.65, -73.38,  12.20, -59.80,  10.48, -66.90, 0.10},
    {"ec", "Ecuador",        C::kSouthAmerica,  -5.00, -81.08,   1.44, -75.19,  -0.18, -78.47, 0.15},
    {"uy", "Uruguay",        C::kSouthAmerica, -34.98, -58.10, -30.08, -53.07, -34.90, -56.16, 0.20},
    {"bo", "Bolivia",        C::kSouthAmerica, -22.90, -69.65,  -9.67, -57.45, -16.49, -68.13, 0.05},
    {"py", "Paraguay",       C::kSouthAmerica, -27.60, -62.65, -19.29, -54.26, -25.26, -57.58, 0.05},
};
// clang-format on
}  // namespace

const std::vector<CountrySpec>& builtin_country_specs() { return kSpecs; }

Country make_country(const CountrySpec& spec) {
  Country c;
  c.code = spec.code;
  c.name = spec.name;
  c.continent = spec.continent;
  c.shape = geo::box_polygon(spec.south, spec.west, spec.north, spec.east);
  c.capital = geo::make_latlon(spec.capital_lat, spec.capital_lon);
  c.hosting_score = spec.hosting_score;
  return c;
}

}  // namespace ageo::world
