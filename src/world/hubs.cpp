#include "world/hubs.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>
#include <tuple>

#include "common/error.hpp"
#include "geo/geodesy.hpp"

namespace ageo::world {

namespace {
using C = Continent;

struct HubSpec {
  const char* name;
  double lat, lon;
  C continent;
  double congestion_ms;
};

// clang-format off
const HubSpec kHubSpecs[] = {
    // Europe: dense, efficient.
    {"Frankfurt",  50.11,   8.68, C::kEurope, 0.4},
    {"Amsterdam",  52.37,   4.90, C::kEurope, 0.4},
    {"London",     51.50,  -0.12, C::kEurope, 0.4},
    {"Paris",      48.85,   2.35, C::kEurope, 0.5},
    {"Stockholm",  59.33,  18.07, C::kEurope, 0.6},
    {"Prague",     50.08,  14.44, C::kEurope, 0.6},
    {"Warsaw",     52.23,  21.01, C::kEurope, 0.8},
    {"Madrid",     40.42,  -3.70, C::kEurope, 0.8},
    {"Milan",      45.46,   9.19, C::kEurope, 0.7},
    {"Vienna",     48.21,  16.37, C::kEurope, 0.6},
    {"Moscow",     55.75,  37.62, C::kEurope, 1.5},
    {"Istanbul",   41.01,  28.98, C::kEurope, 1.8},
    // North America.
    {"NewYork",    40.71, -74.00, C::kNorthAmerica, 0.4},
    {"Ashburn",    39.04, -77.49, C::kNorthAmerica, 0.3},
    {"Chicago",    41.88, -87.63, C::kNorthAmerica, 0.4},
    {"Dallas",     32.78, -96.80, C::kNorthAmerica, 0.5},
    {"LosAngeles", 34.05,-118.24, C::kNorthAmerica, 0.5},
    {"Seattle",    47.61,-122.33, C::kNorthAmerica, 0.5},
    {"Miami",      25.76, -80.19, C::kNorthAmerica, 0.6},
    {"Toronto",    43.65, -79.38, C::kNorthAmerica, 0.5},
    // South America: fewer hubs, more congestion.
    {"SaoPaulo",  -23.55, -46.63, C::kSouthAmerica, 1.2},
    {"BuenosAires",-34.60, -58.38, C::kSouthAmerica, 1.5},
    {"Santiago",  -33.45, -70.67, C::kSouthAmerica, 1.5},
    {"Bogota",      4.71, -74.07, C::kSouthAmerica, 1.8},
    {"Lima",      -12.05, -77.04, C::kSouthAmerica, 2.0},
    // Africa & Middle East: sparse; much traffic transits Europe/Dubai.
    {"Johannesburg",-26.20, 28.05, C::kAfrica, 2.0},
    {"Cairo",      30.04,  31.24, C::kAfrica, 2.5},
    {"Lagos",       6.52,   3.38, C::kAfrica, 3.0},
    {"Nairobi",    -1.29,  36.82, C::kAfrica, 2.5},
    {"Dubai",      25.20,  55.27, C::kAfrica, 1.2},
    {"TelAviv",    32.07,  34.78, C::kAfrica, 1.0},
    // Asia: capacity varies wildly; China hubs are heavily congested.
    {"Mumbai",     19.08,  72.88, C::kAsia, 2.0},
    {"Chennai",    13.08,  80.27, C::kAsia, 2.2},
    {"Singapore",   1.35, 103.82, C::kAsia, 0.8},
    {"HongKong",   22.32, 114.17, C::kAsia, 1.0},
    {"Tokyo",      35.68, 139.69, C::kAsia, 0.7},
    {"Seoul",      37.57, 126.98, C::kAsia, 0.8},
    {"Taipei",     25.03, 121.56, C::kAsia, 1.0},
    {"Shanghai",   31.23, 121.47, C::kAsia, 3.5},
    {"Beijing",    39.90, 116.40, C::kAsia, 3.5},
    {"Bangkok",    13.76, 100.50, C::kAsia, 1.8},
    {"Jakarta",    -6.21, 106.85, C::kAsia, 2.2},
    {"Karachi",    24.86,  67.00, C::kAsia, 2.8},
    // Oceania & Australia.
    {"Sydney",    -33.87, 151.21, C::kAustralia, 0.8},
    {"Perth",     -31.95, 115.86, C::kAustralia, 1.0},
    {"Auckland",  -36.85, 174.76, C::kOceania, 1.0},
};

struct EdgeSpec {
  const char* a;
  const char* b;
  double inflation;
};

// Cable systems. Inflation multiplies great-circle distance to model
// cable slack and routing detours along the edge.
const EdgeSpec kEdgeSpecs[] = {
    // Intra-Europe mesh (selected; dense enough to be near-complete).
    {"Frankfurt", "Amsterdam", 1.30}, {"Frankfurt", "London", 1.30},
    {"Frankfurt", "Paris", 1.30},     {"Frankfurt", "Prague", 1.25},
    {"Frankfurt", "Vienna", 1.25},    {"Frankfurt", "Milan", 1.30},
    {"Frankfurt", "Warsaw", 1.30},    {"Frankfurt", "Stockholm", 1.35},
    {"Frankfurt", "Moscow", 1.40},    {"Frankfurt", "Istanbul", 1.45},
    {"Amsterdam", "London", 1.25},    {"Amsterdam", "Paris", 1.30},
    {"Amsterdam", "Stockholm", 1.30}, {"London", "Paris", 1.25},
    {"London", "Madrid", 1.35},       {"Paris", "Madrid", 1.30},
    {"Paris", "Milan", 1.30},         {"Milan", "Vienna", 1.30},
    {"Milan", "Istanbul", 1.40},      {"Vienna", "Prague", 1.20},
    {"Vienna", "Warsaw", 1.30},       {"Vienna", "Istanbul", 1.40},
    {"Prague", "Warsaw", 1.25},       {"Warsaw", "Moscow", 1.35},
    {"Stockholm", "Moscow", 1.40},    {"Madrid", "Milan", 1.35},
    // Transatlantic.
    {"London", "NewYork", 1.15},      {"Amsterdam", "NewYork", 1.18},
    {"Paris", "Ashburn", 1.18},       {"London", "Toronto", 1.20},
    {"Madrid", "Miami", 1.25},
    // Intra-North-America mesh.
    {"NewYork", "Ashburn", 1.20},     {"NewYork", "Chicago", 1.20},
    {"NewYork", "Toronto", 1.20},     {"Ashburn", "Chicago", 1.20},
    {"Ashburn", "Dallas", 1.25},      {"Ashburn", "Miami", 1.20},
    {"Chicago", "Dallas", 1.20},      {"Chicago", "Seattle", 1.25},
    {"Chicago", "Toronto", 1.15},     {"Dallas", "LosAngeles", 1.20},
    {"Dallas", "Miami", 1.25},        {"LosAngeles", "Seattle", 1.20},
    // North <-> South America.
    {"Miami", "Bogota", 1.25},        {"Miami", "SaoPaulo", 1.30},
    {"Bogota", "Lima", 1.35},         {"Lima", "Santiago", 1.35},
    {"SaoPaulo", "BuenosAires", 1.25},{"BuenosAires", "Santiago", 1.30},
    {"SaoPaulo", "Madrid", 1.30},     {"SaoPaulo", "Lagos", 1.40},
    // Europe <-> Africa / Middle East.
    {"London", "Lagos", 1.30},        {"Milan", "Cairo", 1.30},
    {"London", "Johannesburg", 1.35}, {"Milan", "TelAviv", 1.25},
    {"Frankfurt", "TelAviv", 1.30},   {"Istanbul", "Dubai", 1.35},
    {"Cairo", "Dubai", 1.25},         {"Cairo", "Nairobi", 1.40},
    {"Nairobi", "Johannesburg", 1.40},{"Lagos", "Johannesburg", 1.50},
    {"TelAviv", "Cairo", 1.40},
    // Middle East / Asia.
    {"Dubai", "Mumbai", 1.20},        {"Dubai", "Karachi", 1.25},
    {"Dubai", "Singapore", 1.30},     {"Karachi", "Mumbai", 1.40},
    {"Mumbai", "Chennai", 1.30},      {"Chennai", "Singapore", 1.25},
    // Intra-Asia.
    {"Singapore", "HongKong", 1.25},  {"Singapore", "Jakarta", 1.15},
    {"Singapore", "Bangkok", 1.25},   {"Bangkok", "HongKong", 1.35},
    {"HongKong", "Tokyo", 1.25},      {"HongKong", "Taipei", 1.20},
    {"HongKong", "Shanghai", 1.30},   {"Taipei", "Tokyo", 1.25},
    {"Tokyo", "Seoul", 1.20},         {"Seoul", "Beijing", 1.40},
    {"Shanghai", "Beijing", 1.30},    {"Moscow", "Beijing", 1.45},
    // Oceania / Australia.
    {"Sydney", "Auckland", 1.20},     {"Sydney", "Singapore", 1.30},
    {"Sydney", "LosAngeles", 1.20},   {"Auckland", "LosAngeles", 1.25},
    {"Perth", "Singapore", 1.25},     {"Sydney", "Perth", 1.25},
    {"Sydney", "Tokyo", 1.30},        {"Jakarta", "Perth", 1.30},
    // Pacific islands hang off Sydney/Auckland; Guam off Tokyo.
    {"Auckland", "Tokyo", 1.35},
};
// clang-format on
}  // namespace

HubGraph::HubGraph(
    std::vector<Hub> hubs,
    std::vector<std::tuple<std::size_t, std::size_t, double>> edges)
    : hubs_(std::move(hubs)) {
  const std::size_t n = hubs_.size();
  detail::require(n > 0, "HubGraph: need at least one hub");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  dist_.assign(n * n, kInf);
  hops_.assign(n * n, 0);
  congest_.assign(n * n, 0.0);
  // `next_` table for path reconstruction of congestion sums.
  std::vector<std::size_t> next(n * n, SIZE_MAX);

  for (std::size_t i = 0; i < n; ++i) dist_[idx(i, i)] = 0.0;
  for (auto& [a, b, inflation] : edges) {
    detail::require(a < n && b < n && a != b, "HubGraph: bad edge endpoint");
    detail::require(inflation >= 1.0, "HubGraph: inflation must be >= 1");
    double d =
        geo::distance_km(hubs_[a].location, hubs_[b].location) * inflation;
    if (d < dist_[idx(a, b)]) {
      dist_[idx(a, b)] = dist_[idx(b, a)] = d;
      hops_[idx(a, b)] = hops_[idx(b, a)] = 1;
      next[idx(a, b)] = b;
      next[idx(b, a)] = a;
    }
  }
  // Floyd–Warshall with path reconstruction.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = dist_[idx(i, k)];
      if (dik == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        double alt = dik + dist_[idx(k, j)];
        if (alt < dist_[idx(i, j)]) {
          dist_[idx(i, j)] = alt;
          hops_[idx(i, j)] = hops_[idx(i, k)] + hops_[idx(k, j)];
          next[idx(i, j)] = next[idx(i, k)];
        }
      }
    }
  }
  // Congestion along each shortest path (every hub visited, inclusive).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        congest_[idx(i, j)] = hubs_[i].congestion_ms;
        continue;
      }
      if (dist_[idx(i, j)] == kInf) continue;
      double sum = hubs_[i].congestion_ms;
      std::size_t cur = i;
      // Bounded walk: shortest paths have < n edges.
      for (std::size_t step = 0; step < n && cur != j; ++step) {
        cur = next[idx(cur, j)];
        if (cur == SIZE_MAX) break;
        sum += hubs_[cur].congestion_ms;
      }
      congest_[idx(i, j)] = sum;
    }
  }
}

std::size_t HubGraph::nearest_hub(const geo::LatLon& p) const noexcept {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < hubs_.size(); ++i) {
    double d = geo::distance_km(p, hubs_[i].location);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

double HubGraph::route_km(std::size_t a, std::size_t b) const {
  detail::require(a < size() && b < size(), "HubGraph::route_km: bad index");
  return dist_[idx(a, b)];
}

int HubGraph::route_hops(std::size_t a, std::size_t b) const {
  detail::require(a < size() && b < size(), "HubGraph::route_hops: bad index");
  return hops_[idx(a, b)];
}

double HubGraph::route_congestion_ms(std::size_t a, std::size_t b) const {
  detail::require(a < size() && b < size(),
                  "HubGraph::route_congestion_ms: bad index");
  return congest_[idx(a, b)];
}

const HubGraph& HubGraph::builtin() {
  static const HubGraph graph = [] {
    std::vector<Hub> hubs;
    for (const auto& s : kHubSpecs) {
      hubs.push_back(Hub{s.name, geo::make_latlon(s.lat, s.lon), s.continent,
                         s.congestion_ms});
    }
    auto find = [&](std::string_view name) -> std::size_t {
      for (std::size_t i = 0; i < hubs.size(); ++i)
        if (hubs[i].name == name) return i;
      throw InvalidArgument("HubGraph: unknown hub name in edge table");
    };
    std::vector<std::tuple<std::size_t, std::size_t, double>> edges;
    for (const auto& e : kEdgeSpecs)
      edges.emplace_back(find(e.a), find(e.b), e.inflation);
    return HubGraph(std::move(hubs), std::move(edges));
  }();
  return graph;
}

}  // namespace ageo::world
