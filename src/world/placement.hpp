// Random placement of hosts inside countries.
#pragma once

#include "common/rng.hpp"
#include "geo/latlon.hpp"
#include "world/world_model.hpp"

namespace ageo::world {

/// A random point that country_at() maps back to `id`. Points cluster
/// around the capital (where population and infrastructure are) with a
/// spread proportional to the country's size. Falls back to the capital
/// itself if rejection sampling fails (tiny countries on coarse shapes).
geo::LatLon random_point_in_country(const WorldModel& w, CountryId id,
                                    Rng& rng);

/// Rough radius of a country, km: half the diagonal of its bounding box.
double country_radius_km(const WorldModel& w, CountryId id);

}  // namespace ageo::world
