// Continent taxonomy.
//
// Matches the paper's Appendix A boundaries: Mexico goes with Central
// America, Turkey and Russia with Europe, the Middle East with Africa,
// Malaysia and New Zealand with Oceania, and Australia is its own
// category — giving the eight rows/columns of the paper's Figure 22
// continent confusion matrix.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace ageo::world {

enum class Continent : std::uint8_t {
  kEurope = 0,
  kAfrica,
  kAsia,
  kOceania,
  kNorthAmerica,
  kCentralAmerica,
  kSouthAmerica,
  kAustralia,
};

inline constexpr std::size_t kContinentCount = 8;

inline constexpr std::array<std::string_view, kContinentCount>
    kContinentNames = {
        "Europe",        "Africa",          "Asia",          "Oceania",
        "North America", "Central America", "South America", "Australia",
};

constexpr std::string_view to_string(Continent c) noexcept {
  return kContinentNames[static_cast<std::size_t>(c)];
}

}  // namespace ageo::world
