#include "world/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "geo/geodesy.hpp"
#include "world/placement.hpp"

namespace ageo::world {

std::vector<ProviderSpec> default_provider_specs() {
  // Claimed-country counts scale the paper's 222-territory universe down
  // to this model's ~95 countries; honesty ordering follows §8
  // ("Provider A is especially misleading").
  return {
      {"A", 90, 0.42, 360, 10},
      {"B", 75, 0.55, 300, 8},
      {"C", 60, 0.75, 300, 10},
      {"D", 45, 0.80, 270, 9},
      {"E", 35, 0.55, 280, 7},
      {"F", 20, 0.80, 280, 6},
      {"G", 12, 0.90, 180, 5},
  };
}

namespace {

/// Countries ordered by claim attractiveness for one provider: hosting
/// score with a little per-provider jitter, so all providers claim
/// roughly the same popular countries first (paper Fig. 14: "providers
/// who claim only a few locations tend to claim more or less the same
/// locations").
std::vector<CountryId> claim_order(const WorldModel& w, Rng& rng) {
  std::vector<CountryId> ids(w.country_count());
  std::iota(ids.begin(), ids.end(), CountryId{0});
  std::vector<double> score(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    score[i] = w.country(ids[i]).hosting_score + rng.uniform(0.0, 0.15);
  std::sort(ids.begin(), ids.end(), [&](CountryId a, CountryId b) {
    return score[a] > score[b];
  });
  return ids;
}

/// A point in `id`'s capital metro (within max_km of the capital) that
/// still maps back to `id` — capitals near borders need the check.
geo::LatLon metro_point(const WorldModel& w, CountryId id, Rng& rng,
                        double max_km) {
  const geo::LatLon capital = w.country(id).capital;
  for (int attempt = 0; attempt < 16; ++attempt) {
    geo::LatLon p = geo::destination(capital, rng.uniform(0.0, 360.0),
                                     rng.uniform(0.0, max_km));
    if (w.country_at(p) == id) return p;
  }
  return capital;
}

/// Pick a real hosting site country: heavily weighted toward the cheap,
/// reliable hosting countries (hosting_score cubed).
CountryId pick_hosting_country(const WorldModel& w, Rng& rng) {
  double total = 0.0;
  for (CountryId i = 0; i < w.country_count(); ++i) {
    double h = w.country(i).hosting_score;
    total += h * h * h;
  }
  double r = rng.uniform(0.0, total);
  for (CountryId i = 0; i < w.country_count(); ++i) {
    double h = w.country(i).hosting_score;
    r -= h * h * h;
    if (r <= 0.0) return i;
  }
  return static_cast<CountryId>(w.country_count() - 1);
}

}  // namespace

Fleet generate_fleet(const WorldModel& w,
                     std::span<const ProviderSpec> specs,
                     std::uint64_t seed) {
  Fleet fleet;
  std::uint32_t next_asn = 63000;
  std::uint32_t next_prefix = 1;

  for (const auto& spec : specs) {
    detail::require(spec.n_claimed_countries > 0 &&
                        spec.n_claimed_countries <=
                            static_cast<int>(w.country_count()),
                    "generate_fleet: claimed countries out of range");
    detail::require(spec.honesty >= 0.0 && spec.honesty <= 1.0,
                    "generate_fleet: honesty must be in [0, 1]");
    Rng rng(seed, "fleet/" + spec.name);

    // The provider's real hosting footprint: a handful of sites in cheap
    // hosting countries (consolidation is the paper's core hypothesis).
    std::vector<int> site_indices;
    for (int s = 0; s < spec.n_real_sites; ++s) {
      ProviderSite site;
      site.provider = spec.name;
      site.country = pick_hosting_country(w, rng);
      // Consolidated sites are in the hosting country's capital metro.
      site.location = metro_point(w, site.country, rng, 40.0);
      site.asn = next_asn++;
      site_indices.push_back(static_cast<int>(fleet.sites.size()));
      fleet.sites.push_back(site);
    }

    auto order = claim_order(w, rng);
    std::vector<CountryId> claimed(
        order.begin(),
        order.begin() + static_cast<std::ptrdiff_t>(spec.n_claimed_countries));

    // Server count per claimed country: popular countries host many
    // servers, the long tail one or two. Apportion by hosting weight.
    std::vector<double> weight(claimed.size());
    double wtot = 0.0;
    for (std::size_t i = 0; i < claimed.size(); ++i) {
      weight[i] = 0.4 + 3.0 * w.country(claimed[i]).hosting_score;
      wtot += weight[i];
    }

    int server_id = 0;
    for (std::size_t i = 0; i < claimed.size(); ++i) {
      int n_here = std::max(
          1, static_cast<int>(std::round(weight[i] / wtot *
                                         spec.target_servers)));
      const Country& cc = w.country(claimed[i]);
      // Per-(provider, country) honesty decision: providers either host
      // in a country or they don't — all servers claimed there share the
      // outcome (matches the per-country pattern of Fig. 19).
      // Honesty rises steeply with hosting attractiveness: providers
      // almost always really host in the US/DE/NL tier (where hosting
      // is cheapest anyway) and almost never in the long tail — the
      // paper's Fig. 17/18: top-10 countries hold 84% of the credible
      // cases but only 11% of the false ones.
      double h = cc.hosting_score;
      double p_honest =
          std::pow(spec.honesty, 1.6 - h) * (0.3 + 0.7 * h);
      if (h < 0.05) p_honest = 0.0;
      const bool honest_country = rng.chance(p_honest);

      // Honest hosting uses a dedicated in-country site in the capital
      // metro — real servers live in data centers, not random fields.
      int honest_site = -1;
      if (honest_country) {
        ProviderSite site;
        site.provider = spec.name;
        site.country = claimed[i];
        site.location = metro_point(w, claimed[i], rng, 25.0);
        site.asn = next_asn++;
        honest_site = static_cast<int>(fleet.sites.size());
        fleet.sites.push_back(site);
      }

      // Dishonest servers of this country all live at one consolidated
      // site (same AS, same /24 — the Fig. 16 signature).
      int false_site =
          site_indices[rng.uniform_index(site_indices.size())];

      std::uint32_t prefix = next_prefix++;
      for (int s = 0; s < n_here; ++s) {
        ProxyHost h;
        h.provider = spec.name;
        h.server_id = server_id++;
        h.claimed_country = claimed[i];
        int site_idx = honest_country ? honest_site : false_site;
        const ProviderSite& site =
            fleet.sites[static_cast<std::size_t>(site_idx)];
        h.true_country = site.country;
        // Servers sit within the site's data-center metro (few km
        // apart), never crossing a border.
        h.true_location = site.location;
        for (int attempt = 0; attempt < 8; ++attempt) {
          geo::LatLon p = geo::destination(
              site.location, rng.uniform(0.0, 360.0), rng.uniform(0.0, 15.0));
          if (w.country_at(p) == site.country) {
            h.true_location = p;
            break;
          }
        }
        h.true_site = site_idx;
        h.asn = site.asn;
        h.prefix24 = prefix;
        h.pingable = rng.chance(0.10);
        h.gateway_pingable = rng.chance(0.10);
        h.drops_time_exceeded = rng.chance(0.33);
        fleet.hosts.push_back(std::move(h));
      }
    }
  }
  return fleet;
}

std::vector<Fleet> longitudinal_fleets(const WorldModel& w,
                                       std::span<const ProviderSpec> specs,
                                       const EvolutionConfig& cfg,
                                       std::uint64_t seed) {
  detail::require(cfg.n_epochs > 0, "longitudinal_fleets: need >= 1 epoch");
  detail::require(cfg.honesty_drift >= 0.0,
                  "longitudinal_fleets: drift must be >= 0");
  std::vector<Fleet> out;
  out.reserve(static_cast<std::size_t>(cfg.n_epochs));
  // Per-provider drift direction, fixed for the whole study.
  Rng dir_rng(seed, "fleet/evolution");
  std::vector<double> direction(specs.size());
  for (auto& d : direction) d = dir_rng.chance(0.5) ? 1.0 : -1.0;

  for (int e = 0; e < cfg.n_epochs; ++e) {
    std::vector<ProviderSpec> epoch_specs(specs.begin(), specs.end());
    for (std::size_t p = 0; p < epoch_specs.size(); ++p) {
      epoch_specs[p].honesty =
          std::clamp(epoch_specs[p].honesty +
                         direction[p] * cfg.honesty_drift * e,
                     0.02, 0.98);
    }
    out.push_back(generate_fleet(w, epoch_specs,
                                 seed + static_cast<std::uint64_t>(e)));
  }
  return out;
}

std::vector<int> competitor_claim_counts(int n_providers,
                                         std::uint64_t seed) {
  detail::require(n_providers > 0, "competitor_claim_counts: need > 0");
  Rng rng(seed, "competitors");
  std::vector<int> counts(static_cast<std::size_t>(n_providers));
  for (auto& c : counts) {
    // Log-normal-ish: most providers claim a handful of countries, a few
    // claim nearly everywhere.
    double v = rng.lognormal(2.3, 0.9);
    c = std::clamp(static_cast<int>(std::round(v)), 1, 95);
  }
  std::sort(counts.rbegin(), counts.rend());
  return counts;
}

}  // namespace ageo::world
