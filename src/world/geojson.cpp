#include "world/geojson.hpp"

#include <ostream>

#include "common/error.hpp"

namespace ageo::world {

namespace {
void write_coord(std::ostream& os, const geo::LatLon& p) {
  // GeoJSON is [lon, lat].
  os << "[" << p.lon_deg << "," << p.lat_deg << "]";
}
}  // namespace

void write_countries_geojson(std::ostream& os, const WorldModel& w) {
  os << "{\"type\":\"FeatureCollection\",\"features\":[\n";
  for (std::size_t i = 0; i < w.country_count(); ++i) {
    const Country& c = w.country(static_cast<CountryId>(i));
    os << "{\"type\":\"Feature\",\"properties\":{\"code\":\"" << c.code
       << "\",\"name\":\"" << c.name << "\",\"continent\":\""
       << to_string(c.continent) << "\",\"hosting_score\":"
       << c.hosting_score << "},\"geometry\":{\"type\":\"Polygon\","
       << "\"coordinates\":[[";
    auto vs = c.shape.vertices();
    for (std::size_t v = 0; v < vs.size(); ++v) {
      if (v) os << ",";
      write_coord(os, vs[v]);
    }
    os << ",";
    write_coord(os, vs[0]);  // close the ring
    os << "]]}}";
    if (i + 1 < w.country_count()) os << ",";
    os << "\n";
  }
  os << "]}\n";
}

void write_data_centers_geojson(std::ostream& os, const WorldModel& w) {
  os << "{\"type\":\"FeatureCollection\",\"features\":[\n";
  auto dcs = w.data_centers();
  for (std::size_t i = 0; i < dcs.size(); ++i) {
    const DataCenter& dc = dcs[i];
    os << "{\"type\":\"Feature\",\"properties\":{\"name\":\"" << dc.name
       << "\",\"country\":\"" << w.country(dc.country).code
       << "\"},\"geometry\":{\"type\":\"Point\",\"coordinates\":";
    write_coord(os, dc.location);
    os << "}}";
    if (i + 1 < dcs.size()) os << ",";
    os << "\n";
  }
  os << "]}\n";
}

void write_region_geojson(std::ostream& os, const grid::Region& region,
                          std::string_view properties_json) {
  detail::require(region.grid() != nullptr,
                  "write_region_geojson: detached region");
  os << "{\"type\":\"Feature\",\"properties\":" << properties_json
     << ",\"geometry\":{\"type\":\"MultiPoint\",\"coordinates\":[";
  bool first = true;
  region.for_each_cell([&](std::size_t idx) {
    if (!first) os << ",";
    first = false;
    write_coord(os, region.grid()->center(idx));
  });
  os << "]}}\n";
}

}  // namespace ageo::world
