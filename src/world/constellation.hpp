// The landmark constellation: synthetic RIPE Atlas.
//
// Anchors are well-connected, reliably located hosts; probes are more
// numerous but noisier. Continental densities mirror the paper's Figure 3:
// most landmarks are in Europe, then North America, with thin coverage of
// Asia, South America and Africa.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "geo/latlon.hpp"
#include "world/world_model.hpp"

namespace ageo::world {

struct Landmark {
  geo::LatLon location;
  CountryId country = kNoCountry;
  Continent continent = Continent::kEurope;
  bool is_anchor = false;
  /// Whether the host accepts TCP connections on port 80; determines
  /// whether the web measurement tool sees one or two round trips
  /// (paper §4.2, Fig. 7).
  bool listens_port80 = false;
  /// Access-network quality in (0, 1]: anchors ~1, probes lower. Scales
  /// the landmark's own access delay and congestion noise.
  double net_quality = 1.0;
};

struct ConstellationConfig {
  int n_anchors = 250;
  int n_probes = 800;
  std::uint64_t seed = 1;
};

/// Generate the constellation. Anchors first, probes after; order stable
/// for a fixed config.
std::vector<Landmark> generate_constellation(const WorldModel& w,
                                             const ConstellationConfig& cfg);

}  // namespace ageo::world
