// The backbone hub graph of the synthetic Internet.
//
// Packets between two hosts travel host -> nearest hub -> (hub graph
// shortest path) -> nearest hub -> host. Hubs model major internet
// exchange cities; edges model real submarine/terrestrial cable systems
// with an inflation factor for cable slack. This produces the circuitous,
// region-dependent routing the paper identifies as the central obstacle
// for delay-based geolocation: southern Africa reaches Asia via Europe or
// Dubai, Pacific islands via Sydney, and intra-China paths are congested.
#pragma once

#include <cstddef>
#include <string>
#include <tuple>
#include <vector>

#include "geo/latlon.hpp"
#include "world/continent.hpp"

namespace ageo::world {

struct Hub {
  std::string name;
  geo::LatLon location;
  Continent continent = Continent::kEurope;
  /// Mean queueing delay added per transit of this hub, ms. High values
  /// model congested regions (the paper's explanation for why simple
  /// delay models beat sophisticated ones outside Europe/NA).
  double congestion_ms = 0.5;
};

class HubGraph {
 public:
  /// The built-in ~45-hub world backbone.
  static const HubGraph& builtin();

  /// Construct from explicit hubs and edges; `edges` entries are
  /// (hub index a, hub index b, inflation factor >= 1). Distances are
  /// great-circle * inflation. Throws on invalid indices or factors.
  HubGraph(std::vector<Hub> hubs,
           std::vector<std::tuple<std::size_t, std::size_t, double>> edges);

  std::size_t size() const noexcept { return hubs_.size(); }
  const Hub& hub(std::size_t i) const { return hubs_.at(i); }
  const std::vector<Hub>& hubs() const noexcept { return hubs_; }

  /// Index of the hub nearest to a point (great-circle).
  std::size_t nearest_hub(const geo::LatLon& p) const noexcept;

  /// Cable length of the shortest hub-graph path, km (already inflated).
  /// Disconnected pairs return +infinity; i == j returns 0.
  double route_km(std::size_t a, std::size_t b) const;

  /// Number of edges on that shortest path (0 when a == b).
  int route_hops(std::size_t a, std::size_t b) const;

  /// Sum of congestion_ms over every hub the path transits (endpoints
  /// included once each).
  double route_congestion_ms(std::size_t a, std::size_t b) const;

 private:
  std::vector<Hub> hubs_;
  std::vector<double> dist_;      // n*n shortest-path km
  std::vector<int> hops_;         // n*n edge counts
  std::vector<double> congest_;   // n*n summed congestion

  std::size_t idx(std::size_t a, std::size_t b) const noexcept {
    return a * hubs_.size() + b;
  }
};

}  // namespace ageo::world
