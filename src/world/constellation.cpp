#include "world/constellation.hpp"

#include <array>

#include "common/error.hpp"
#include "world/placement.hpp"

namespace ageo::world {

namespace {

/// Continental shares of the constellation (paper Fig. 3: Europe dominates,
/// then North America; Asia/South America thin; Africa a few).
struct ContinentShare {
  Continent continent;
  double anchor_share;
  double probe_share;
};

constexpr std::array<ContinentShare, 8> kShares = {{
    {Continent::kEurope, 0.55, 0.50},
    {Continent::kNorthAmerica, 0.22, 0.25},
    {Continent::kAsia, 0.10, 0.10},
    {Continent::kSouthAmerica, 0.04, 0.05},
    {Continent::kAfrica, 0.03, 0.04},
    {Continent::kOceania, 0.02, 0.02},
    {Continent::kAustralia, 0.03, 0.03},
    {Continent::kCentralAmerica, 0.01, 0.01},
}};

/// Pick a country on `continent` weighted by hosting score (well-hosted
/// countries have more measurement infrastructure too).
CountryId pick_country(const WorldModel& w, Continent continent, Rng& rng) {
  double total = 0.0;
  for (CountryId i = 0; i < w.country_count(); ++i) {
    const Country& c = w.country(i);
    if (c.continent == continent) total += 0.05 + c.hosting_score;
  }
  double r = rng.uniform(0.0, total);
  for (CountryId i = 0; i < w.country_count(); ++i) {
    const Country& c = w.country(i);
    if (c.continent != continent) continue;
    r -= 0.05 + c.hosting_score;
    if (r <= 0.0) return i;
  }
  // Numerically unreachable fallback: first country of the continent.
  for (CountryId i = 0; i < w.country_count(); ++i)
    if (w.country(i).continent == continent) return i;
  throw InvalidArgument("constellation: continent has no countries");
}

}  // namespace

std::vector<Landmark> generate_constellation(const WorldModel& w,
                                             const ConstellationConfig& cfg) {
  detail::require(cfg.n_anchors > 0 && cfg.n_probes >= 0,
                  "generate_constellation: invalid counts");
  Rng rng(cfg.seed, "constellation");
  std::vector<Landmark> out;
  out.reserve(static_cast<std::size_t>(cfg.n_anchors + cfg.n_probes));

  auto place = [&](bool is_anchor, const ContinentShare& share, int count) {
    for (int i = 0; i < count; ++i) {
      Landmark lm;
      lm.is_anchor = is_anchor;
      lm.continent = share.continent;
      lm.country = pick_country(w, share.continent, rng);
      lm.location = random_point_in_country(w, lm.country, rng);
      lm.listens_port80 = rng.chance(0.5);
      // Anchors sit in data centers; probes are often on home networks.
      lm.net_quality = is_anchor ? rng.uniform(0.85, 1.0)
                                 : rng.uniform(0.4, 0.95);
      out.push_back(lm);
    }
  };

  // Largest-remainder apportionment keeps the counts exact.
  for (bool is_anchor : {true, false}) {
    int total = is_anchor ? cfg.n_anchors : cfg.n_probes;
    int assigned = 0;
    for (std::size_t s = 0; s < kShares.size(); ++s) {
      double share = is_anchor ? kShares[s].anchor_share
                               : kShares[s].probe_share;
      int count = (s + 1 == kShares.size())
                      ? total - assigned
                      : static_cast<int>(share * total);
      count = std::max(0, count);
      assigned += count;
      place(is_anchor, kShares[s], count);
    }
  }
  return out;
}

}  // namespace ageo::world
