// Crowdsourced validation hosts (paper §5, Fig. 8).
//
// 40 volunteers plus 150 Mechanical Turk workers in known locations,
// measuring with the web tool. Most run Windows; their self-reported
// positions are rounded to two decimal places (~10 km of uncertainty),
// which we reproduce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/latlon.hpp"
#include "world/world_model.hpp"

namespace ageo::world {

enum class ClientOs : std::uint8_t { kLinux, kWindows };
enum class Browser : std::uint8_t {
  kCli,        // the command-line tool, not a browser
  kChrome,
  kFirefox,
  kEdge,
};

struct CrowdHost {
  geo::LatLon true_location;
  geo::LatLon reported_location;  // rounded to 2 decimals
  CountryId country = kNoCountry;
  Continent continent = Continent::kEurope;
  bool is_volunteer = false;      // else Mechanical Turk worker
  ClientOs os = ClientOs::kWindows;
  Browser browser = Browser::kChrome;
  double net_quality = 0.6;       // residential networks
};

struct CrowdConfig {
  int n_volunteers = 40;
  int n_turkers = 150;
  std::uint64_t seed = 7;
};

std::vector<CrowdHost> generate_crowd(const WorldModel& w,
                                      const CrowdConfig& cfg);

}  // namespace ageo::world
