// The synthetic world: countries, continents, land mask, data centers.
//
// Substitutes for the paper's Natural Earth map (land/ocean and country
// outlines), its 85N/60S plausibility clip, and the University of
// Wisconsin data-center list. See DESIGN.md, "Substitutions".
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/latlon.hpp"
#include "grid/grid.hpp"
#include "grid/region.hpp"
#include "world/country.hpp"

namespace ageo::world {

/// A known server-hosting facility. The claim-disambiguation step
/// (paper §6, Fig. 15) intersects prediction regions with these.
struct DataCenter {
  std::string name;
  geo::LatLon location;
  CountryId country = kNoCountry;
};

/// Per-cell country assignment for one grid; smallest country wins where
/// coarse boxes overlap (so enclaves like Vatican-in-Italy resolve
/// correctly).
class CountryRaster {
 public:
  CountryRaster(const grid::Grid& g, std::vector<CountryId> cells);

  const grid::Grid* grid() const noexcept { return grid_; }
  CountryId at(std::size_t cell) const noexcept { return cells_[cell]; }

  /// All countries having at least one cell inside `region`, unsorted
  /// unique list.
  std::vector<CountryId> countries_in(const grid::Region& region) const;

  /// True if any cell of `region` belongs to `country`.
  bool region_touches(const grid::Region& region, CountryId country) const;

 private:
  const grid::Grid* grid_;
  std::vector<CountryId> cells_;
};

class WorldModel {
 public:
  /// World with the built-in ~95-country table.
  WorldModel();
  explicit WorldModel(std::vector<Country> countries);

  std::span<const Country> countries() const noexcept { return countries_; }
  const Country& country(CountryId id) const;
  std::size_t country_count() const noexcept { return countries_.size(); }

  /// Lookup by two-letter code; returns nullopt when unknown.
  std::optional<CountryId> find_country(std::string_view code) const noexcept;

  /// Country containing a point (smallest containing shape), or kNoCountry
  /// for ocean / unmodelled land.
  CountryId country_at(const geo::LatLon& p) const noexcept;

  Continent continent_of(CountryId id) const;

  /// Cells belonging to any country: the "land" of this world.
  grid::Region land_mask(const grid::Grid& g) const;

  /// Land restricted to the plausible latitude band [60 S, 85 N]
  /// (paper §3: Eriksson-style physical plausibility prior).
  grid::Region plausibility_mask(const grid::Grid& g) const;

  /// Cells of one country.
  grid::Region country_region(const grid::Grid& g, CountryId id) const;

  /// Rasterise the whole country table onto a grid.
  CountryRaster country_raster(const grid::Grid& g) const;

  /// Hosting facilities: one per country with hosting_score >= 0.15, at
  /// the capital, plus secondary sites in the top hosting countries.
  std::span<const DataCenter> data_centers() const noexcept {
    return data_centers_;
  }

  /// Data centers located inside `region`.
  std::vector<const DataCenter*> data_centers_in(
      const grid::Region& region) const;

 private:
  std::vector<Country> countries_;
  std::vector<std::size_t> by_area_;  // country indices, ascending box area
  std::vector<DataCenter> data_centers_;

  void build_indexes();
};

}  // namespace ageo::world
