// VPN provider fleets: claimed vs. true server locations.
//
// Substitutes for the seven commercial VPN services of the paper's §6.
// The generator knows the ground truth (where each server really is);
// the measurement and assessment pipeline never reads the `true_*`
// fields — they exist so experiments can score themselves.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geo/latlon.hpp"
#include "world/world_model.hpp"

namespace ageo::world {

struct ProxyHost {
  std::string provider;       // "A" .. "G"
  int server_id = 0;          // unique within provider
  CountryId claimed_country = kNoCountry;

  // Ground truth (simulator-only; hidden from the pipeline).
  CountryId true_country = kNoCountry;
  geo::LatLon true_location;
  int true_site = -1;         // index into Fleet::sites, -1 if standalone

  // Network metadata the pipeline may use (paper §6, Fig. 16).
  std::uint32_t asn = 0;
  std::uint32_t prefix24 = 0; // opaque /24 identifier

  // Filtering behaviour (paper §4.2): most proxies ignore pings and
  // break traceroute; TCP connects on common ports always work.
  bool pingable = false;
  bool gateway_pingable = false;
  bool drops_time_exceeded = true;
};

/// A physical hosting site a provider actually uses.
struct ProviderSite {
  std::string provider;
  CountryId country = kNoCountry;
  geo::LatLon location;
  std::uint32_t asn = 0;
};

struct ProviderSpec {
  std::string name;
  int n_claimed_countries = 20;
  /// Base probability that a claim is honest (scaled down further for
  /// countries where hosting is implausible).
  double honesty = 0.5;
  /// Approximate number of servers to generate.
  int target_servers = 280;
  /// How many real hosting sites the provider operates.
  int n_real_sites = 8;
};

/// The seven providers of the study, A (broadest, least honest) through
/// G (modest claims). Claimed-country counts follow Fig. 14's ranking.
std::vector<ProviderSpec> default_provider_specs();

struct Fleet {
  std::vector<ProxyHost> hosts;
  std::vector<ProviderSite> sites;
};

Fleet generate_fleet(const WorldModel& w,
                     std::span<const ProviderSpec> specs, std::uint64_t seed);

/// Claimed-country counts for ~150 competitor providers (Fig. 14's grey
/// background distribution): most providers claim few, common countries;
/// a few claim the whole world.
std::vector<int> competitor_claim_counts(int n_providers, std::uint64_t seed);

/// Longitudinal fleet evolution (paper §8.1 future work: "repeat the
/// measurements over time, and report on whether providers become more
/// or less honest as the wider ecosystem changes").
struct EvolutionConfig {
  int n_epochs = 6;
  /// Per-epoch honesty change magnitude; each provider drifts up or
  /// down (deterministically per seed) as market pressure moves it.
  double honesty_drift = 0.06;
};

/// One fleet per epoch. Epoch 0 is generate_fleet(specs); later epochs
/// regenerate with drifted honesty (server churn is implicit in the
/// regeneration — real providers renumber their fleets constantly).
std::vector<Fleet> longitudinal_fleets(const WorldModel& w,
                                       std::span<const ProviderSpec> specs,
                                       const EvolutionConfig& cfg,
                                       std::uint64_t seed);

}  // namespace ageo::world
