// Countries of the synthetic world model.
//
// Each country is approximated by one axis-aligned latitude/longitude box
// (adequate for country-level claim checking; the paper itself evaluates
// only country-level claims, §6). Coordinates are coarse versions of real
// geography so that the confusion structure — which neighbours get mixed
// up — matches the paper's Figures 22/23.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "geo/latlon.hpp"
#include "geo/polygon.hpp"
#include "world/continent.hpp"

namespace ageo::world {

/// Index into WorldModel's country table.
using CountryId = std::uint16_t;
inline constexpr CountryId kNoCountry = 0xffff;

struct Country {
  std::string code;      // ISO-3166-ish two-letter code
  std::string name;
  Continent continent = Continent::kEurope;
  geo::Polygon shape;
  geo::LatLon capital;   // representative city; servers cluster here
  /// Hosting attractiveness in [0, 1]: probability weight that a proxy
  /// provider actually places hardware here. ~0 for implausible locations
  /// (North Korea, Vatican, Pitcairn), high for US/DE/NL/GB/CZ etc.
  double hosting_score = 0.0;
};

/// Raw static row used to build the table.
struct CountrySpec {
  std::string_view code;
  std::string_view name;
  Continent continent;
  double south, west, north, east;  // bounding box, degrees
  double capital_lat, capital_lon;
  double hosting_score;
};

/// The built-in country table (~80 countries). Stable order across runs.
const std::vector<CountrySpec>& builtin_country_specs();

/// Materialise a Country from its spec.
Country make_country(const CountrySpec& spec);

}  // namespace ageo::world
