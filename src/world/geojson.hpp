// GeoJSON export of world geometry and prediction regions.
//
// Lets downstream users inspect countries, data centers, and prediction
// regions in standard GIS tooling (geojson.io, QGIS, kepler.gl). Regions
// export as MultiPoint clouds of covered cell centers — compact, honest
// about the raster representation, and renderable everywhere.
#pragma once

#include <iosfwd>

#include "grid/region.hpp"
#include "world/world_model.hpp"

namespace ageo::world {

/// All countries as a FeatureCollection of Polygon features with
/// properties {code, name, continent, hosting_score}.
void write_countries_geojson(std::ostream& os, const WorldModel& w);

/// Data centers as a FeatureCollection of Point features.
void write_data_centers_geojson(std::ostream& os, const WorldModel& w);

/// One prediction region as a Feature (MultiPoint of cell centers) with
/// the given properties blob (raw JSON object text, e.g. R"({"id":3})";
/// pass "{}" for none).
void write_region_geojson(std::ostream& os, const grid::Region& region,
                          std::string_view properties_json = "{}");

}  // namespace ageo::world
