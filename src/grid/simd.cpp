#include "grid/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

#include "grid/simd_detail.hpp"

namespace ageo::grid::simd {

namespace detail {
// Defined in simd_avx2.cpp: null unless the AVX2 TU was compiled in AND
// the running CPU supports AVX2.
const KernelTable* avx2_table() noexcept;
bool avx2_compiled() noexcept;
}  // namespace detail

namespace {

using detail::AnnulusOp;

template <AnnulusOp Op>
void annulus_scalar(const geo::Vec3* centers, std::size_t begin,
                    std::size_t end, const geo::Vec3& v, double cos_outer,
                    double cos_inner, std::uint64_t* words) {
  if (begin >= end) return;
  const std::size_t w0 = begin >> 6;
  const std::size_t w1 = (end - 1) >> 6;
  for (std::size_t wi = w0; wi <= w1; ++wi) {
    const std::size_t lo = std::max(begin, wi << 6);
    const std::size_t hi = std::min(end, (wi << 6) + 64);
    const std::uint64_t pass =
        detail::annulus_pass_bits(centers, lo, hi, v, cos_outer, cos_inner);
    const std::uint64_t rm = detail::word_run_mask(
        static_cast<unsigned>(lo - (wi << 6)),
        static_cast<unsigned>(hi - (wi << 6)));
    detail::fold_word<Op>(words[wi], pass, rm);
  }
}

void exp_neg_scalar(const double* a, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = detail::exp_neg_core(a[i]);
}

void ring_multiply_span_scalar(double* density, const double* dist,
                               std::size_t n, double mu_km, double inv_2s2) {
  for (std::size_t i = 0; i < n; ++i) {
    const double d = density[i];
    if (d == 0.0) continue;
    density[i] = d * detail::exp_neg_core(detail::ring_arg(dist[i], mu_km,
                                                           inv_2s2));
  }
}

void ring_multiply_gather_scalar(double* density, const std::uint32_t* didx,
                                 const double* dist, const std::uint32_t* gidx,
                                 std::size_t n, double mu_km, double inv_2s2) {
  for (std::size_t j = 0; j < n; ++j) {
    density[didx[j]] *= detail::exp_neg_core(
        detail::ring_arg(dist[gidx[j]], mu_km, inv_2s2));
  }
}

void popcount_cells_scalar(const std::uint64_t* cover, std::size_t stride,
                           std::size_t planes, std::size_t base, std::size_t n,
                           std::uint32_t* pc) {
  for (std::size_t j = 0; j < n; ++j) {
    std::uint32_t s = 0;
    for (std::size_t w = 0; w < planes; ++w) {
      s += static_cast<std::uint32_t>(std::popcount(cover[w * stride + base + j]));
    }
    pc[j] = s;
  }
}

constexpr KernelTable kScalarTable = {
    Level::kScalar,
    annulus_scalar<AnnulusOp::kSet>,
    annulus_scalar<AnnulusOp::kIntersect>,
    annulus_scalar<AnnulusOp::kSubtract>,
    exp_neg_scalar,
    ring_multiply_span_scalar,
    ring_multiply_gather_scalar,
    popcount_cells_scalar,
};

std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<int> g_exp_mode{-1};  // -1 = uninitialized

bool env_is(const char* value, std::string_view a, std::string_view b = {}) {
  const std::string_view v(value);
  return v == a || (!b.empty() && v == b);
}

const KernelTable* resolve_default() {
  bool want_simd = true;
  if (const char* env = std::getenv("AGEO_SIMD")) {
    if (env_is(env, "off", "scalar") || env_is(env, "0")) want_simd = false;
  }
  if (want_simd) {
    if (const KernelTable* t = detail::avx2_table()) return t;
  }
  return &kScalarTable;
}

const KernelTable* active_table() noexcept {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = resolve_default();
    const KernelTable* expected = nullptr;
    if (!g_active.compare_exchange_strong(expected, t,
                                          std::memory_order_acq_rel)) {
      t = expected;
    }
  }
  return t;
}

}  // namespace

bool compiled() noexcept { return detail::avx2_compiled(); }

bool cpu_supported() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Level active_level() noexcept { return active_table()->level; }

void force_level(Level level) noexcept {
  const KernelTable* t = &kScalarTable;
  if (level == Level::kAvx2) {
    if (const KernelTable* a = detail::avx2_table()) t = a;
  }
  g_active.store(t, std::memory_order_release);
}

ExpMode exp_mode() noexcept {
  int m = g_exp_mode.load(std::memory_order_acquire);
  if (m < 0) {
    m = 0;
    if (const char* env = std::getenv("AGEO_SIMD_EXP")) {
      if (env_is(env, "fast", "1")) m = 1;
    }
    int expected = -1;
    if (!g_exp_mode.compare_exchange_strong(expected, m,
                                            std::memory_order_acq_rel)) {
      m = expected;
    }
  }
  return static_cast<ExpMode>(m);
}

void set_exp_mode(ExpMode mode) noexcept {
  g_exp_mode.store(static_cast<int>(mode), std::memory_order_release);
}

const KernelTable& kernels() noexcept { return *active_table(); }

const KernelTable& scalar_kernels() noexcept { return kScalarTable; }

const KernelTable* avx2_kernels() noexcept { return detail::avx2_table(); }

}  // namespace ageo::grid::simd
