// Grid windows: axis-aligned sub-rectangles of the global raster.
//
// The coarse-to-fine refinement driver (mlat/refine.hpp) localizes at a
// coarse resolution first, takes the bounding window of the surviving
// region, and re-runs the fine-resolution scans only inside that window.
// A Window is the [r0, r1) row band and a circular column interval
// [c0, c0 + width) of that plan: the column interval may wrap across the
// antimeridian (c0 + width > cols), mirroring how annuli wrap, so a
// region hugging longitude 180 still gets a tight window instead of the
// whole globe.
//
// Windows are plain row/column index ranges on a specific Grid; mapping
// a window between two grids whose cell sizes have an exact integer
// ratio (map_window) is pure index arithmetic, which is what makes the
// refinement levels composable without any floating-point geometry.
#pragma once

#include <cstddef>
#include <optional>

#include "grid/grid.hpp"
#include "grid/region.hpp"

namespace ageo::grid {

class Scratch;

/// A row band and a circular column interval of one grid. Rows are
/// [r0, r1); columns are the `width` columns starting at c0, taken
/// modulo cols (wrapping the antimeridian when c0 + width > cols).
/// width == cols means every column. Grids are passed to the member
/// helpers rather than stored so a Window is trivially copyable and
/// never dangles.
struct Window {
  std::size_t r0 = 0;
  std::size_t r1 = 0;
  std::size_t c0 = 0;
  std::size_t width = 0;

  bool empty() const noexcept { return r0 >= r1 || width == 0; }
  std::size_t rows() const noexcept { return r1 > r0 ? r1 - r0 : 0; }
  std::size_t cells() const noexcept { return rows() * width; }
  bool wraps(std::size_t cols) const noexcept { return c0 + width > cols; }

  bool operator==(const Window&) const = default;

  /// True when the window covers the whole grid.
  bool is_full(const Grid& g) const noexcept {
    return r0 == 0 && r1 == g.rows() && width == g.cols();
  }

  /// Cell-index membership test.
  bool contains(const Grid& g, std::size_t idx) const noexcept {
    const std::size_t r = g.row_of(idx);
    if (r < r0 || r >= r1) return false;
    const std::size_t cols = g.cols();
    return (g.col_of(idx) + cols - c0) % cols < width;
  }

  /// Visit row r's column interval as one or two ascending half-open
  /// [begin, end) cell-index spans (two when the interval wraps the
  /// antimeridian — the wrapped low-column part is emitted first, so a
  /// caller walking rows in order visits cells in ascending global
  /// index order).
  template <typename SpanF>
  void for_row_spans(const Grid& g, std::size_t r, SpanF&& f) const {
    const std::size_t cols = g.cols();
    const std::size_t base = g.index(r, 0);
    if (c0 + width <= cols) {
      f(base + c0, base + c0 + width);
    } else {
      f(base, base + (c0 + width - cols));
      f(base + c0, base + cols);
    }
  }
};

/// The whole grid as a window.
Window full_window(const Grid& g) noexcept;

/// Minimal window covering every set cell of `region`: the exact row
/// band, and the shortest circular column interval containing every
/// occupied column (the complement of the largest circular run of empty
/// columns — on a sphere the tight interval may cross the antimeridian).
/// Empty regions have no bounding window. `scratch` pools the internal
/// column-occupancy scan; null degrades to a plain allocation.
std::optional<Window> bounding_window(const Region& region,
                                      Scratch* scratch = nullptr);

/// Grow a window by `margin` cells on every side, clamping rows to the
/// grid and widening to the full column range when the grown interval
/// would meet itself around the globe.
Window expand_window(const Window& w, const Grid& g, std::size_t margin);

/// Map a window from a coarse grid onto a finer one sharing the same
/// origin. from.cell_deg() must be an exact integer multiple of
/// to.cell_deg() (throws InvalidArgument otherwise): coarse row r maps
/// to fine rows [r*k, (r+1)*k) and likewise for columns, so the mapped
/// window covers precisely the fine cells lying under the coarse ones.
Window map_window(const Window& w, const Grid& from, const Grid& to);

/// out := the window's cells, intersected with `mask` when non-null.
/// `out` must be an empty region on `g` (typically a pooled one).
void window_region_into(const Grid& g, const Window& w, const Region* mask,
                        Region& out);

}  // namespace ageo::grid
