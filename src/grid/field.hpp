// Probability fields over the grid (Spotter's multilateration).
//
// Spotter models each landmark's distance constraint as a Gaussian ring of
// probability over the Earth's surface and combines rings with Bayes' rule
// (pointwise product followed by renormalisation). A Field is that density,
// stored per cell and weighted by cell area when normalising.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "geo/latlon.hpp"
#include "grid/grid.hpp"
#include "grid/region.hpp"

namespace ageo::grid {

class Field {
 public:
  Field() = default;
  /// Uniform (unnormalised, all-ones) field over `g`.
  explicit Field(const Grid& g);

  const Grid* grid() const noexcept { return grid_; }

  double at(std::size_t idx) const noexcept { return density_[idx]; }
  double& at(std::size_t idx) noexcept { return density_[idx]; }

  /// Multiply in a Gaussian ring likelihood centered on `center`:
  /// L(cell) = exp(-(dist(cell, center) - mu)^2 / (2 sigma^2)).
  /// Requires sigma > 0.
  void multiply_gaussian_ring(const geo::LatLon& center, double mu_km,
                              double sigma_km);

  /// Zero out density outside `mask` (e.g. the land mask).
  void apply_mask(const Region& mask);

  /// Normalise so the area-weighted integral is 1. Returns false (leaving
  /// the field unchanged) when the total mass is zero — i.e. the
  /// constraints were inconsistent.
  bool normalize() noexcept;

  /// Total area-weighted mass.
  double total_mass() const noexcept;

  /// Highest-density region containing at least `mass` of the total
  /// probability (cells added in decreasing density order). Returns an
  /// empty region if the field has zero mass. `mass` must be in (0, 1].
  Region credible_region(double mass) const;

  /// Cell with the highest density, if any mass exists.
  std::optional<std::size_t> mode() const noexcept;

 private:
  const Grid* grid_ = nullptr;
  std::vector<double> density_;
};

}  // namespace ageo::grid
