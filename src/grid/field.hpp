// Probability fields over the grid (Spotter's multilateration).
//
// Spotter models each landmark's distance constraint as a Gaussian ring of
// probability over the Earth's surface and combines rings with Bayes' rule
// (pointwise product followed by renormalisation). A Field is that density,
// stored per cell and weighted by cell area when normalising.
//
// Ring multiplies take the support-windowed fast path: outside the radius
// where exp() underflows to exactly +0.0 the product is zeroed wholesale,
// and inside it only cells that are still alive are visited (the support
// collapses rapidly as rings accumulate). With a CapScanPlan the per-cell
// great-circle distances come from a cached table, so a multiply does zero
// trigonometry. The original full-grid scan is retained verbatim under
// grid::reference as the oracle; the fast path is bit-for-bit identical to
// it (pinned by field_equivalence_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "geo/latlon.hpp"
#include "grid/grid.hpp"
#include "grid/region.hpp"

namespace ageo::grid {

class CapScanPlan;
class Field;
class Scratch;

namespace reference {
/// The original full-grid ring multiply: one atan2 + exp per nonzero cell.
/// This defines the semantics the windowed fast path must reproduce
/// exactly; tests compare against it. Too slow for production use.
void multiply_gaussian_ring(Field& f, const geo::LatLon& center, double mu_km,
                            double sigma_km);
}  // namespace reference

namespace detail {

/// exp(-a) is exactly +0.0 in IEEE-754 double precision for every
/// a >= 746: the smallest subnormal is 2^-1074, so any result below
/// 2^-1075 rounds to zero under round-to-nearest, and exp underflows
/// that far once a > 1075 * ln 2 ~= 745.133. A cell whose Gaussian
/// exponent a = ((d - mu)^2) / (2 sigma^2) clears this cutoff therefore
/// multiplies the density by a bit-exact +0.0 — which is why the fast
/// path may zero it without evaluating exp at all.
inline constexpr double kGaussianCut = 746.0;

/// Slack (km) added to the support annulus radii. The annulus membership
/// test works in dot-product space while the Gaussian distance uses
/// atan2(cross, dot); the two can disagree by the angle-equivalent of a
/// few ulps of the dot product (< 1e-3 km everywhere on Earth, worst at
/// the poles of the cap where |sin| vanishes), plus ulp-level rounding in
/// the a >= kGaussianCut comparison itself. 4 km is three orders of
/// magnitude of headroom; cells inside the annulus but outside the true
/// support still go through the exact comparison, so correctness never
/// depends on this constant — only the guarantee that no live cell is
/// zeroed wholesale does.
inline constexpr double kSupportSlackKm = 4.0;

/// Half-width (km) of a Gaussian ring's hard support: every cell whose
/// |distance - mu| is at least this multiplies the density by a
/// bit-exact +0.0. One definition shared by the Field fast path and the
/// refinement driver's coarse support windowing (mlat/refine.cpp), so
/// both window the same annulus [mu - w, mu + w].
double gaussian_support_halfwidth_km(double sigma_km) noexcept;

}  // namespace detail

class Field {
 public:
  Field() = default;
  /// Uniform (unnormalised, all-ones) field over `g`.
  explicit Field(const Grid& g);

  const Grid* grid() const noexcept { return grid_; }

  double at(std::size_t idx) const noexcept { return density_[idx]; }
  /// Mutable cell access. Invalidates the cached total mass and the
  /// live-cell list (the caller may zero or revive any cell).
  double& at(std::size_t idx) noexcept {
    invalidate_caches();
    return density_[idx];
  }

  /// Multiply in a Gaussian ring likelihood centered on `center`:
  /// L(cell) = exp(-(dist(cell, center) - mu)^2 / (2 sigma^2)).
  /// Requires sigma > 0 and a non-NaN mu.
  void multiply_gaussian_ring(const geo::LatLon& center, double mu_km,
                              double sigma_km);

  /// Same, but with per-cell distances served from `plan`'s cached table
  /// (zero trig). `plan` must be built on this field's grid and centered
  /// on the landmark. Bit-identical to the overload above.
  void multiply_gaussian_ring(const CapScanPlan& plan, double mu_km,
                              double sigma_km);

  /// Validation-free entry points for callers that have already checked
  /// the whole constraint list once (mlat::fuse_gaussian_rings); the
  /// per-ring `require`s above are measurable on the hot path.
  void multiply_gaussian_ring_unchecked(const geo::LatLon& center,
                                        double mu_km, double sigma_km);
  void multiply_gaussian_ring_unchecked(const CapScanPlan& plan, double mu_km,
                                        double sigma_km);

  /// Zero out density outside `mask` (e.g. the land mask).
  void apply_mask(const Region& mask);

  /// Normalise so the area-weighted integral is 1. Returns false (leaving
  /// the field unchanged) when the total mass is zero — i.e. the
  /// constraints were inconsistent. On success the post-division mass is
  /// cached, so the usual normalize() + credible_region() sequence does
  /// not rescan the grid for its total.
  bool normalize() noexcept;

  /// Total area-weighted mass (cached between mutations).
  double total_mass() const noexcept;

  /// Highest-density region containing at least `mass` of the total
  /// probability (cells added in decreasing density order; ties broken by
  /// cell index). `mass` of exactly 1 returns the full support. Returns
  /// an empty region if the field has zero mass. `mass` must be in
  /// (0, 1].
  Region credible_region(double mass) const;

  /// Cell with the highest density, if any mass exists.
  std::optional<std::size_t> mode() const noexcept;

  /// Re-attach to `g` as a fresh uniform field, reusing the density and
  /// live-list capacity. Arena support (grid/scratch.hpp): equivalent to
  /// `*this = Field(g)` minus the allocations.
  void rebind(const Grid& g);

  /// Arena used for internal temporaries (the support Region of the
  /// first windowed multiply, the credible-region ordering). Null — the
  /// default — means plain per-call allocations. The arena must outlive
  /// this binding and must belong to the calling thread; Scratch's
  /// FieldLease resets it to null on release so a pooled Field never
  /// carries a stale arena across threads.
  void set_scratch(Scratch* s) noexcept { scratch_ = s; }

  /// Bytes of heap capacity currently retained (arena accounting).
  std::size_t capacity_bytes() const noexcept {
    return density_.capacity() * sizeof(double) +
           live_.capacity() * sizeof(std::uint32_t);
  }

 private:
  friend void reference::multiply_gaussian_ring(Field&, const geo::LatLon&,
                                                double, double);

  void invalidate_caches() noexcept {
    mass_valid_ = false;
    live_valid_ = false;
  }

  /// Core of the windowed multiply; DistF maps cell index -> great-circle
  /// distance (km) from the ring center, by the exact reference formula.
  /// SupportF rasterizes the support annulus [inner, outer] into the
  /// empty Region it is handed (pooled when scratch_ is set).
  template <typename DistF, typename SupportF>
  void multiply_ring_windowed(double mu_km, double sigma_km, DistF&& dist,
                              SupportF&& support);

  /// Opt-in vectorized-exp multiply (simd::ExpMode::kFast with a plan's
  /// distance table). Same support windowing and live-list maintenance
  /// as the exact path; the per-cell weight comes from the SIMD fast
  /// exponential (ULP bound pinned by simd_test) instead of std::exp.
  template <typename SupportF>
  void multiply_ring_fast(const double* dist, double mu_km, double sigma_km,
                          SupportF&& support);

  const Grid* grid_ = nullptr;
  Scratch* scratch_ = nullptr;
  std::vector<double> density_;

  /// Indices of cells that may be nonzero, in increasing order — a
  /// superset of the true nonzero set is allowed (stale zeros are
  /// harmless and get compacted on the next multiply). Maintained by the
  /// ring multiplies and apply_mask so later rings only touch survivors.
  std::vector<std::uint32_t> live_;
  bool live_valid_ = false;

  mutable double mass_ = 0.0;
  mutable bool mass_valid_ = false;
};

}  // namespace ageo::grid
