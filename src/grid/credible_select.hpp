// Weighted credible-set selection shared by Field and SubField.
//
// Both posterior representations pick the highest-density cells until a
// target mass is reached. The selection must be bit-identical between
// the full-grid Field and the windowed SubField (refine_equivalence_test
// pins them against each other), so there is exactly one copy of the
// quickselect: callers hand in the candidate ordering, the density
// comparator and the per-candidate weight, and every arithmetic step —
// bracket sums, accumulator order, the spill pass — runs the same
// instructions on the same values in both paths.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ageo::grid::detail {

/// Select a prefix of `order` (reordered in place) by decreasing density
/// until the accumulated weight reaches `target`, calling emit(i) for
/// every selected candidate. `denser` must be a strict weak ordering and
/// a deterministic total order (ties broken by index) so the outcome
/// never depends on sort implementation details.
///
/// Weighted quickselect: shrink a bracket around the density threshold
/// with nth_element (expected O(n)) instead of sorting every candidate
/// cell (O(n log n)). Halves that land entirely inside the region are
/// committed unsorted; only the final small bracket is sorted to place
/// the exact cut.
template <typename Denser, typename Weight, typename Emit>
void weighted_select_into(std::vector<std::uint32_t>& order, Denser&& denser,
                          Weight&& weight, double target, Emit&& emit) {
  std::size_t lo = 0, hi = order.size();
  double acc = 0.0;
  while (hi - lo > 256) {
    const std::size_t mid = lo + (hi - lo) / 2;
    std::nth_element(order.begin() + lo, order.begin() + mid,
                     order.begin() + hi, denser);
    double top = 0.0;
    for (std::size_t k = lo; k < mid; ++k) top += weight(order[k]);
    if (acc + top >= target) {
      hi = mid;
    } else {
      for (std::size_t k = lo; k < mid; ++k) emit(order[k]);
      acc += top;
      lo = mid;
    }
  }
  std::sort(order.begin() + lo, order.begin() + hi, denser);
  for (std::size_t k = lo; k < hi && acc < target; ++k) {
    emit(order[k]);
    acc += weight(order[k]);
  }
  if (acc < target && hi < order.size()) {
    // Summation-order rounding can leave the bracket a hair short of the
    // target; spill into the remaining (less dense) cells.
    std::sort(order.begin() + hi, order.end(), denser);
    for (std::size_t k = hi; k < order.size() && acc < target; ++k) {
      emit(order[k]);
      acc += weight(order[k]);
    }
  }
}

}  // namespace ageo::grid::detail
