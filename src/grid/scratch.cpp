#include "grid/scratch.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "obs/obs.hpp"

namespace ageo::grid {

namespace {

/// Buffers kept per arena pool; beyond this, released buffers are freed.
constexpr std::size_t kLocalCap = 8;
/// Buffers kept per type in the process-wide retired store.
constexpr std::size_t kStoreCap = 32;
/// Dirty ranges tracked per word lease before collapsing to an envelope.
constexpr std::size_t kMaxDirtyRanges = 64;

struct GlobalStats {
  std::atomic<std::uint64_t> buffers_allocated{0};
  std::atomic<std::uint64_t> bytes_allocated{0};
  std::atomic<std::uint64_t> bytes_retained{0};
  std::atomic<std::uint64_t> high_water_bytes{0};

  void on_alloc(std::uint64_t bytes) noexcept {
    buffers_allocated.fetch_add(1, std::memory_order_relaxed);
    bytes_allocated.fetch_add(bytes, std::memory_order_relaxed);
  }
  void on_retain(std::uint64_t bytes) noexcept {
    std::uint64_t now =
        bytes_retained.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t hw = high_water_bytes.load(std::memory_order_relaxed);
    while (now > hw && !high_water_bytes.compare_exchange_weak(
                           hw, now, std::memory_order_relaxed)) {
    }
  }
  void on_release(std::uint64_t bytes) noexcept {
    bytes_retained.fetch_sub(bytes, std::memory_order_relaxed);
  }
};

GlobalStats& stats() {
  static GlobalStats s;
  return s;
}

std::uint64_t word_buf_bytes(const std::vector<std::uint64_t>& b) noexcept {
  return b.capacity() * sizeof(std::uint64_t);
}

std::uint64_t index_bytes(const std::vector<std::uint32_t>& b) noexcept {
  return b.capacity() * sizeof(std::uint32_t);
}

std::uint64_t double_bytes(const std::vector<double>& b) noexcept {
  return b.capacity() * sizeof(double);
}

std::uint64_t region_bytes(const Region& r) noexcept {
  return r.words().capacity() * sizeof(std::uint64_t);
}

}  // namespace

// Process-wide store of buffers donated by dying arenas. The audit
// engine spawns fresh jthread workers per run, so each run's
// thread-local arenas are destroyed at run end; without the store every
// run would re-warm from cold. The store is leaked deliberately —
// thread_local arenas can be destroyed after static destructors run.
struct ScratchStore {
  std::mutex mu;
  std::vector<Scratch::WordBuf> words;
  std::vector<Region> regions;
  std::vector<Field> fields;
  std::vector<std::vector<std::uint32_t>> indices;
  std::vector<std::vector<double>> dbls;
};

namespace {

ScratchStore& store() {
  static ScratchStore* s = new ScratchStore;
  return *s;
}

}  // namespace

Scratch& Scratch::tls() {
  thread_local Scratch arena;
  return arena;
}

Scratch::~Scratch() {
  ScratchStore& st = store();
  std::lock_guard<std::mutex> lock(st.mu);
  for (auto& wb : words_) {
    if (st.words.size() < kStoreCap) {
      st.words.push_back(std::move(wb));
    } else {
      stats().on_release(word_buf_bytes(wb.buf));
    }
  }
  for (auto& r : regions_) {
    if (st.regions.size() < kStoreCap) {
      st.regions.push_back(std::move(r));
    } else {
      stats().on_release(region_bytes(r));
    }
  }
  for (auto& f : fields_) {
    if (st.fields.size() < kStoreCap) {
      st.fields.push_back(std::move(f));
    } else {
      stats().on_release(f.capacity_bytes());
    }
  }
  for (auto& ix : indices_) {
    if (st.indices.size() < kStoreCap) {
      st.indices.push_back(std::move(ix));
    } else {
      stats().on_release(index_bytes(ix));
    }
  }
  for (auto& db : dbls_) {
    if (st.dbls.size() < kStoreCap) {
      st.dbls.push_back(std::move(db));
    } else {
      stats().on_release(double_bytes(db));
    }
  }
}

// ---------------------------------------------------------------------------
// Word buffers

Scratch::WordBuf Scratch::take_word_buf(std::size_t min_size) {
  WordBuf wb;
  bool pooled = false;
  if (!words_.empty()) {
    wb = std::move(words_.back());
    words_.pop_back();
    pooled = true;
  } else {
    ScratchStore& st = store();
    std::lock_guard<std::mutex> lock(st.mu);
    if (!st.words.empty()) {
      wb = std::move(st.words.back());
      st.words.pop_back();
      pooled = true;
    }
  }
  if (pooled) stats().on_release(word_buf_bytes(wb.buf));

  const std::size_t old_size = wb.buf.size();
  const std::size_t old_cap_bytes = word_buf_bytes(wb.buf);
  if (wb.buf.size() != min_size) wb.buf.resize(min_size);
  const std::size_t new_cap_bytes = word_buf_bytes(wb.buf);
  if (new_cap_bytes > old_cap_bytes) {
    stats().on_alloc(new_cap_bytes - old_cap_bytes);
    AGEO_COUNT_WALL("grid.alloc.cover_buffers");
  }

  // Elements appended by the resize above are value-initialised (zero);
  // only [0, old_size) can hold a previous tenant's bits, and only where
  // that tenant recorded dirt.
  const std::size_t limit = std::min(old_size, min_size);
  if (limit > 0) {
    if (wb.dirty_all) {
      std::fill(wb.buf.begin(), wb.buf.begin() + limit, 0);
    } else {
      // Tenants mark one range per constraint and constraint bands
      // overlap heavily, so merge before clearing — otherwise the same
      // words are zeroed once per overlapping range and the clear cost
      // scales with the constraint count instead of the touched rows.
      std::sort(wb.dirty.begin(), wb.dirty.end());
      std::size_t run_b = 0, run_e = 0;
      for (const auto& [b, e] : wb.dirty) {
        const std::size_t lo = std::min(b, limit);
        const std::size_t hi = std::min(e, limit);
        if (lo >= hi) continue;
        if (lo > run_e) {
          std::fill(wb.buf.begin() + run_b, wb.buf.begin() + run_e, 0);
          run_b = lo;
          run_e = hi;
        } else {
          run_e = std::max(run_e, hi);
        }
      }
      std::fill(wb.buf.begin() + run_b, wb.buf.begin() + run_e, 0);
    }
  }
  wb.dirty.clear();
  wb.dirty_all = true;
  return wb;
}

void Scratch::give_word_buf(WordsLease& lease) {
  const std::size_t cap_bytes = word_buf_bytes(lease.buf_);
  if (cap_bytes > lease.bytes_at_acquire_) {
    stats().on_alloc(cap_bytes - lease.bytes_at_acquire_);
    AGEO_COUNT_WALL("grid.alloc.cover_buffers");
  }
  if (words_.size() >= kLocalCap) return;  // freed by the lease dtor
  WordBuf wb;
  wb.buf = std::move(lease.buf_);
  if (lease.tracked_) {
    wb.dirty = std::move(lease.dirty_);
    wb.dirty_all = false;
  } else {
    wb.dirty_all = true;
  }
  stats().on_retain(word_buf_bytes(wb.buf));
  words_.push_back(std::move(wb));
}

Scratch::WordsLease Scratch::words(Scratch* arena, std::size_t n) {
  AGEO_COUNT("mlat.scratch.words_acquires");
  WordsLease lease;
  if (arena) {
    WordBuf wb = arena->take_word_buf(n);
    lease.buf_ = std::move(wb.buf);
    lease.owner_ = arena;
  } else {
    lease.buf_.assign(n, 0);
  }
  lease.bytes_at_acquire_ = word_buf_bytes(lease.buf_);
  return lease;
}

Scratch::WordsLease Scratch::word_buf(Scratch* arena) {
  return words(arena, 0);
}

void Scratch::WordsLease::mark_dirty(std::size_t begin, std::size_t end) {
  if (begin >= end) return;
  if (!tracked_) {
    tracked_ = true;
    dirty_.clear();
  }
  if (!dirty_.empty() && dirty_.size() >= kMaxDirtyRanges) {
    // Collapse to the envelope: coarser (so clears cost more) but still a
    // superset of every marked range, so correctness is unaffected.
    std::size_t lo = begin, hi = end;
    for (const auto& [b, e] : dirty_) {
      lo = std::min(lo, b);
      hi = std::max(hi, e);
    }
    dirty_.clear();
    dirty_.emplace_back(lo, hi);
    return;
  }
  dirty_.emplace_back(begin, end);
}

Scratch::WordsLease::WordsLease(WordsLease&& o) noexcept
    : owner_(o.owner_),
      buf_(std::move(o.buf_)),
      dirty_(std::move(o.dirty_)),
      tracked_(o.tracked_),
      bytes_at_acquire_(o.bytes_at_acquire_) {
  o.owner_ = nullptr;
}

Scratch::WordsLease::~WordsLease() {
  if (owner_) owner_->give_word_buf(*this);
}

// ---------------------------------------------------------------------------
// Regions

Region Scratch::take_region() {
  if (!regions_.empty()) {
    Region r = std::move(regions_.back());
    regions_.pop_back();
    stats().on_release(region_bytes(r));
    return r;
  }
  ScratchStore& st = store();
  std::lock_guard<std::mutex> lock(st.mu);
  if (!st.regions.empty()) {
    Region r = std::move(st.regions.back());
    st.regions.pop_back();
    stats().on_release(region_bytes(r));
    return r;
  }
  return Region();
}

void Scratch::give_region(RegionLease& lease) {
  const std::size_t cap_bytes = region_bytes(lease.region_);
  if (cap_bytes > lease.bytes_at_acquire_) {
    stats().on_alloc(cap_bytes - lease.bytes_at_acquire_);
    AGEO_COUNT_WALL("grid.alloc.region_buffers");
  }
  if (regions_.size() >= kLocalCap) return;
  stats().on_retain(cap_bytes);
  regions_.push_back(std::move(lease.region_));
}

Scratch::RegionLease Scratch::region(Scratch* arena, const Grid& g) {
  AGEO_COUNT("mlat.scratch.region_acquires");
  RegionLease lease;
  if (arena) {
    lease.region_ = arena->take_region();
    lease.owner_ = arena;
  }
  lease.bytes_at_acquire_ = region_bytes(lease.region_);
  lease.region_.rebind(g);
  // rebind() zero-assigns; growth beyond the pooled capacity is detected
  // and counted at release, not here, so the two paths share one site.
  return lease;
}

Scratch::RegionLease::RegionLease(RegionLease&& o) noexcept
    : owner_(o.owner_),
      region_(std::move(o.region_)),
      bytes_at_acquire_(o.bytes_at_acquire_) {
  o.owner_ = nullptr;
}

Scratch::RegionLease::~RegionLease() {
  if (owner_) owner_->give_region(*this);
}

// ---------------------------------------------------------------------------
// Fields

Field Scratch::take_field() {
  if (!fields_.empty()) {
    Field f = std::move(fields_.back());
    fields_.pop_back();
    stats().on_release(f.capacity_bytes());
    return f;
  }
  ScratchStore& st = store();
  std::lock_guard<std::mutex> lock(st.mu);
  if (!st.fields.empty()) {
    Field f = std::move(st.fields.back());
    st.fields.pop_back();
    stats().on_release(f.capacity_bytes());
    return f;
  }
  return Field();
}

void Scratch::give_field(FieldLease& lease) {
  lease.field_.set_scratch(nullptr);
  const std::size_t cap_bytes = lease.field_.capacity_bytes();
  if (cap_bytes > lease.bytes_at_acquire_) {
    stats().on_alloc(cap_bytes - lease.bytes_at_acquire_);
    AGEO_COUNT_WALL("grid.alloc.field_buffers");
  }
  if (fields_.size() >= kLocalCap) return;
  stats().on_retain(cap_bytes);
  fields_.push_back(std::move(lease.field_));
}

Scratch::FieldLease Scratch::field(Scratch* arena, const Grid& g) {
  AGEO_COUNT("mlat.scratch.field_acquires");
  FieldLease lease;
  if (arena) {
    lease.field_ = arena->take_field();
    lease.owner_ = arena;
    lease.bytes_at_acquire_ = lease.field_.capacity_bytes();
    lease.field_.rebind(g);
    lease.field_.set_scratch(arena);
  } else {
    lease.field_.rebind(g);
    lease.bytes_at_acquire_ = lease.field_.capacity_bytes();
  }
  return lease;
}

Scratch::FieldLease::FieldLease(FieldLease&& o) noexcept
    : owner_(o.owner_),
      field_(std::move(o.field_)),
      bytes_at_acquire_(o.bytes_at_acquire_) {
  o.owner_ = nullptr;
}

Scratch::FieldLease::~FieldLease() {
  if (owner_) owner_->give_field(*this);
}

// ---------------------------------------------------------------------------
// Index vectors

std::vector<std::uint32_t> Scratch::take_indices() {
  if (!indices_.empty()) {
    std::vector<std::uint32_t> v = std::move(indices_.back());
    indices_.pop_back();
    stats().on_release(index_bytes(v));
    return v;
  }
  ScratchStore& st = store();
  std::lock_guard<std::mutex> lock(st.mu);
  if (!st.indices.empty()) {
    std::vector<std::uint32_t> v = std::move(st.indices.back());
    st.indices.pop_back();
    stats().on_release(index_bytes(v));
    return v;
  }
  return {};
}

void Scratch::give_indices(IndexLease& lease) {
  const std::size_t cap_bytes = index_bytes(lease.buf_);
  if (cap_bytes > lease.bytes_at_acquire_) {
    stats().on_alloc(cap_bytes - lease.bytes_at_acquire_);
    AGEO_COUNT_WALL("grid.alloc.index_buffers");
  }
  if (indices_.size() >= kLocalCap) return;
  stats().on_retain(cap_bytes);
  lease.buf_.clear();
  indices_.push_back(std::move(lease.buf_));
}

Scratch::IndexLease Scratch::indices(Scratch* arena) {
  AGEO_COUNT("mlat.scratch.index_acquires");
  IndexLease lease;
  if (arena) {
    lease.buf_ = arena->take_indices();
    lease.buf_.clear();
    lease.owner_ = arena;
  }
  lease.bytes_at_acquire_ = index_bytes(lease.buf_);
  return lease;
}

Scratch::IndexLease::IndexLease(IndexLease&& o) noexcept
    : owner_(o.owner_),
      buf_(std::move(o.buf_)),
      bytes_at_acquire_(o.bytes_at_acquire_) {
  o.owner_ = nullptr;
}

Scratch::IndexLease::~IndexLease() {
  if (owner_) owner_->give_indices(*this);
}

// ---------------------------------------------------------------------------
// Double vectors (windowed sub-field densities)

std::vector<double> Scratch::take_doubles() {
  if (!dbls_.empty()) {
    std::vector<double> v = std::move(dbls_.back());
    dbls_.pop_back();
    stats().on_release(double_bytes(v));
    return v;
  }
  ScratchStore& st = store();
  std::lock_guard<std::mutex> lock(st.mu);
  if (!st.dbls.empty()) {
    std::vector<double> v = std::move(st.dbls.back());
    st.dbls.pop_back();
    stats().on_release(double_bytes(v));
    return v;
  }
  return {};
}

void Scratch::give_doubles(DoublesLease& lease) {
  const std::size_t cap_bytes = double_bytes(lease.buf_);
  if (cap_bytes > lease.bytes_at_acquire_) {
    stats().on_alloc(cap_bytes - lease.bytes_at_acquire_);
    AGEO_COUNT_WALL("grid.alloc.double_buffers");
  }
  if (dbls_.size() >= kLocalCap) return;
  stats().on_retain(cap_bytes);
  lease.buf_.clear();
  dbls_.push_back(std::move(lease.buf_));
}

Scratch::DoublesLease Scratch::doubles(Scratch* arena) {
  AGEO_COUNT("mlat.scratch.double_acquires");
  DoublesLease lease;
  if (arena) {
    lease.buf_ = arena->take_doubles();
    lease.buf_.clear();
    lease.owner_ = arena;
  }
  lease.bytes_at_acquire_ = double_bytes(lease.buf_);
  return lease;
}

Scratch::DoublesLease::DoublesLease(DoublesLease&& o) noexcept
    : owner_(o.owner_),
      buf_(std::move(o.buf_)),
      bytes_at_acquire_(o.bytes_at_acquire_) {
  o.owner_ = nullptr;
}

Scratch::DoublesLease::~DoublesLease() {
  if (owner_) owner_->give_doubles(*this);
}

// ---------------------------------------------------------------------------

Scratch::Stats Scratch::aggregate() noexcept {
  const GlobalStats& s = stats();
  Stats out;
  out.buffers_allocated = s.buffers_allocated.load(std::memory_order_relaxed);
  out.bytes_allocated = s.bytes_allocated.load(std::memory_order_relaxed);
  out.bytes_retained = s.bytes_retained.load(std::memory_order_relaxed);
  out.high_water_bytes = s.high_water_bytes.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ageo::grid
