#include "grid/ascii_map.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ageo::grid {

AsciiMap::AsciiMap(int width) : width_(width), height_(width / 4) {
  detail::require(width >= 20 && width <= 360,
                  "AsciiMap: width must be in [20, 360]");
  // Terminal characters are roughly twice as tall as wide, so a 2:1
  // lon:lat map uses width/4 rows for a square-ish aspect.
  cells_.assign(static_cast<std::size_t>(width_) *
                    static_cast<std::size_t>(height_),
                ' ');
}

int AsciiMap::col_of(double lon) const noexcept {
  double f = (geo::wrap_longitude(lon) + 180.0) / 360.0;
  return std::clamp(static_cast<int>(f * width_), 0, width_ - 1);
}

int AsciiMap::row_of(double lat) const noexcept {
  // Row 0 is north.
  double f = (90.0 - std::clamp(lat, -90.0, 90.0)) / 180.0;
  return std::clamp(static_cast<int>(f * height_), 0, height_ - 1);
}

void AsciiMap::add_layer(const Region& region, char glyph) {
  detail::require(region.grid() != nullptr, "AsciiMap: detached region");
  region.for_each_cell([&](std::size_t idx) {
    geo::LatLon c = region.grid()->center(idx);
    cells_[static_cast<std::size_t>(row_of(c.lat_deg)) *
               static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(col_of(c.lon_deg))] = glyph;
  });
}

void AsciiMap::add_marker(const geo::LatLon& p, char glyph) {
  detail::require(geo::is_valid(p), "AsciiMap: invalid marker");
  cells_[static_cast<std::size_t>(row_of(p.lat_deg)) *
             static_cast<std::size_t>(width_) +
         static_cast<std::size_t>(col_of(p.lon_deg))] = glyph;
}

void AsciiMap::crop_latitude(double lat_lo, double lat_hi) {
  detail::require(lat_lo < lat_hi, "AsciiMap: empty latitude crop");
  lat_lo_ = std::max(-90.0, lat_lo);
  lat_hi_ = std::min(90.0, lat_hi);
}

std::vector<std::string> AsciiMap::render() const {
  std::vector<std::string> rows;
  int first = row_of(lat_hi_);
  int last = row_of(lat_lo_);
  for (int r = first; r <= last; ++r) {
    rows.emplace_back(
        cells_.begin() + static_cast<std::ptrdiff_t>(r) * width_,
        cells_.begin() + static_cast<std::ptrdiff_t>(r + 1) * width_);
  }
  return rows;
}

std::string AsciiMap::to_string() const {
  std::string out;
  for (const auto& row : render()) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace ageo::grid
