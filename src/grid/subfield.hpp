// Windowed probability sub-fields (the refinement driver's Spotter path).
//
// A SubField is a Field restricted to a Window: densities are stored
// only for the window's cells, in ascending global-index order. The
// refinement driver proves (mlat/refine.cpp) that every cell a flat
// full-grid posterior would leave nonzero lies inside the window — the
// window is the margin-expanded bounding box of the coarse-level
// intersection of every ring's hard-support annulus — so the cells the
// SubField never represents are exactly the cells the flat posterior
// zeroes.
//
// Bit-identicality with the flat Field (pinned by
// refine_equivalence_test) rests on three facts:
//  * per-cell arithmetic is the same expressions on the same values
//    (a = (d - mu)^2 / (2 sigma^2); compare a >= kGaussianCut; *= 0.0
//    or *= exp(-a)), with distances served by the same plan tables;
//  * mass sums walk cells in ascending global-index order, and the
//    cells skipped relative to the flat scan contribute bit-exact +0.0
//    terms there (x + 0.0 == x for every nonnegative density sum);
//  * the credible-region cut runs the shared selection core
//    (credible_select.hpp) on the same candidate sequence.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geo/latlon.hpp"
#include "grid/grid.hpp"
#include "grid/region.hpp"
#include "grid/scratch.hpp"
#include "grid/window.hpp"

namespace ageo::grid {

class CapScanPlan;

class SubField {
 public:
  /// Uniform (all-ones) sub-field over `w` on `g`. The density and index
  /// buffers come from `scratch` (null degrades to plain allocations);
  /// both are sized to the window, never the globe.
  SubField(const Grid& g, const Window& w, Scratch* scratch);

  /// Sub-field seeded from `seed` (a Region on `g`): window cells in the
  /// seed start at 1.0 and form the live set, every other window cell
  /// starts at the exact +0.0 a flat multiply chain would leave it at.
  /// Sound only when the seed contains every cell the flat posterior
  /// leaves nonzero — the refinement driver's survivor upsample
  /// guarantees exactly that — so the ring multiplies walk the (much
  /// smaller) seed set from the first constraint on instead of
  /// discovering the zeros one multiply at a time.
  SubField(const Grid& g, const Window& w, const Region& seed,
           Scratch* scratch);

  const Grid& grid() const noexcept { return *grid_; }
  const Window& window() const noexcept { return win_; }
  std::size_t cells() const noexcept { return global_.vec().size(); }

  /// Zero density outside `mask` (cells outside the window are not
  /// represented and already count as zero).
  void apply_mask(const Region& mask);

  /// Multiply in a Gaussian ring likelihood; same contract and bits as
  /// Field::multiply_gaussian_ring_unchecked restricted to the window.
  /// The caller (mlat::refine) validates the constraint list once.
  void multiply_gaussian_ring_unchecked(const geo::LatLon& center,
                                        double mu_km, double sigma_km);
  /// Same, with distances served from `plan`'s cached per-cell table.
  void multiply_gaussian_ring_unchecked(const CapScanPlan& plan, double mu_km,
                                        double sigma_km);

  /// Area-weighted mass over the window (== the flat field's total when
  /// the window covers its support). Cached between mutations.
  double total_mass() const noexcept;

  /// Normalise to unit mass; false (unchanged) on zero mass. Same
  /// accumulation order as Field::normalize.
  bool normalize() noexcept;

  /// Highest-density region reaching `mass`, as a full-grid Region.
  /// Same selection as Field::credible_region. `mass` in (0, 1].
  Region credible_region(double mass) const;

 private:
  template <typename DistF>
  void multiply_ring(double mu_km, double sigma_km, DistF&& dist);

  /// Opt-in vectorized-exp multiply (simd::ExpMode::kFast with a plan's
  /// distance table); see Field::multiply_ring_fast.
  void multiply_ring_fast(const double* dist, double mu_km, double sigma_km);

  const Grid* grid_;
  Window win_;
  Scratch* scratch_;
  /// Density per window cell, ascending global-index order.
  Scratch::DoublesLease density_;
  /// Global cell index of each window cell (same order).
  Scratch::IndexLease global_;
  /// Window-local indices of cells that may be nonzero, ascending; a
  /// superset of the true nonzero set is allowed (same contract as
  /// Field::live_).
  Scratch::IndexLease live_;
  bool live_valid_ = false;

  mutable double mass_ = 0.0;
  mutable bool mass_valid_ = false;
};

}  // namespace ageo::grid
