#include "grid/cap_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "geo/units.hpp"
#include "grid/annulus_scan.hpp"
#include "grid/simd.hpp"
#include "grid/window.hpp"
#include "obs/obs.hpp"

namespace ageo::grid {

CapScanPlan::CapScanPlan(const Grid& g, const geo::LatLon& center)
    : g_(&g), center_(center), v_(geo::to_vec3(center)) {
  ageo::detail::require(geo::is_valid(center), "CapScanPlan: invalid center");
  const double cell = g.cell_deg();
  const double lat0 = geo::deg_to_rad(center.lat_deg);
  const double sin0 = std::sin(lat0), cos0 = std::cos(lat0);
  row_p_.resize(g.rows());
  row_q_.resize(g.rows());
  for (std::size_t r = 0; r < g.rows(); ++r) {
    const double latc = geo::deg_to_rad(g.row_lat_south(r) + cell / 2.0);
    row_p_[r] = sin0 * std::sin(latc);
    row_q_[r] = cos0 * std::cos(latc);
  }
  const double t0 =
      (geo::wrap_longitude(center.lon_deg) + 180.0) / cell - 0.5;
  c_round_ = static_cast<long>(std::llround(t0));
  frac_ = t0 - static_cast<double>(c_round_);
  const long half = static_cast<long>(g.cols()) / 2;
  const double cell_rad = geo::deg_to_rad(cell);
  cos_right_.resize(static_cast<std::size_t>(half) + 1);
  cos_left_.resize(static_cast<std::size_t>(half) + 1);
  for (long j = 0; j <= half; ++j) {
    // cos is even and 2pi-periodic, so these are the true cosines of the
    // wrapped longitude offsets even past the antipode, and both arrays
    // are monotone nonincreasing in j (|j -/+ frac| grows with j).
    cos_right_[j] = std::cos((static_cast<double>(j) - frac_) * cell_rad);
    cos_left_[j] = std::cos((static_cast<double>(j) + frac_) * cell_rad);
  }
}

namespace {

/// Leading elements of a nonincreasing array that are >= u / > u.
long count_ge(const std::vector<double>& a, double u) {
  return std::upper_bound(a.begin(), a.end(), u, std::greater<double>()) -
         a.begin();
}
long count_gt(const std::vector<double>& a, double u) {
  return std::lower_bound(a.begin(), a.end(), u, std::greater<double>()) -
         a.begin();
}

}  // namespace

CapScanPlan::RowClass CapScanPlan::classify_row(const detail::AnnulusScan& s,
                                                std::size_t r,
                                                detail::RowZones& z) const {
  const long ncols = static_cast<long>(g_->cols());
  const double P = row_p_[r], Q = row_q_[r];
  if (Q < detail::kMinQ) return RowClass::kNaive;
  const double u_out_wide = (s.cos_outer - detail::kDotMargin - P) / Q;
  const long cand_r = count_ge(cos_right_, u_out_wide);
  if (cand_r == 0) return RowClass::kOutside;  // beyond the outer radius
  const long cand_l = count_ge(cos_left_, u_out_wide);

  z.cand_lo = -(cand_l - 1);
  z.cand_hi = cand_r - 1;
  if (z.cand_hi - z.cand_lo + 1 > ncols) {  // annulus wraps the whole row
    z.cand_lo = -(ncols / 2);
    z.cand_hi = z.cand_lo + ncols - 1;
  }
  const double u_out_safe = (s.cos_outer + detail::kDotMargin - P) / Q;
  const long fill_r = count_ge(cos_right_, u_out_safe);
  if (fill_r == 0) {
    z.fill_lo = detail::kEmptyLo;
    z.fill_hi = detail::kEmptyLo - 1;
  } else {
    z.fill_lo = std::max(z.cand_lo, -(count_ge(cos_left_, u_out_safe) - 1));
    z.fill_hi = std::min(z.cand_hi, fill_r - 1);
  }
  z.hole_lo = z.core_lo = detail::kEmptyLo;
  z.hole_hi = z.core_hi = detail::kEmptyLo - 1;
  if (s.inner_clamped != 0.0) {
    const double u_in_safe = (s.cos_inner - detail::kDotMargin - P) / Q;
    const long hole_r = count_gt(cos_right_, u_in_safe);
    if (hole_r > 0) {
      z.hole_lo = -(count_gt(cos_left_, u_in_safe) - 1);
      z.hole_hi = hole_r - 1;
      const double u_in_wide = (s.cos_inner + detail::kDotMargin - P) / Q;
      const long core_r = count_gt(cos_right_, u_in_wide);
      if (core_r > 0) {
        z.core_lo = -(count_gt(cos_left_, u_in_wide) - 1);
        z.core_hi = core_r - 1;
      }
    }
  }
  return RowClass::kZones;
}

template <typename CellF, typename SpanF>
void CapScanPlan::scan(double inner_km, double outer_km, CellF&& f,
                       SpanF&& fs) const {
  const Grid& g = *g_;
  const detail::AnnulusScan s(g, center_, inner_km, outer_km);
  if (s.empty) return;
  const long ncols = static_cast<long>(g.cols());
  const auto exact_test = [&](std::size_t idx) {
    double d = std::clamp(s.v.dot(g.center_vec(idx)), -1.0, 1.0);
    if (d >= s.cos_outer && d <= s.cos_inner) f(idx);
  };

  detail::RowZones z;
  for (std::size_t r = s.r0; r < s.r1; ++r) {
    const std::size_t base = g.index(r, 0);
    switch (classify_row(s, r, z)) {
      case RowClass::kNaive:  // ill-conditioned window: scan the whole row
        for (std::size_t c = 0; c < g.cols(); ++c) exact_test(base + c);
        continue;
      case RowClass::kOutside:
        continue;
      case RowClass::kZones:
        break;
    }
    detail::emit_zones(
        z,
        [&](long o) {
          long c = (c_round_ + o) % ncols;
          if (c < 0) c += ncols;
          exact_test(base + static_cast<std::size_t>(c));
        },
        [&](long o_lo, long o_hi) {
          detail::for_col_spans(c_round_, o_lo, o_hi, ncols,
                                [&](long b0, long b1) {
                                  fs(base + static_cast<std::size_t>(b0),
                                     base + static_cast<std::size_t>(b1));
                                });
        });
  }
}

void CapScanPlan::rasterize_annulus(double inner_km, double outer_km,
                                    Region& out) const {
  ageo::detail::require(out.grid() == g_, "CapScanPlan: region on a different grid");
  const Grid& g = *g_;
  const detail::AnnulusScan s(g, center_, inner_km, outer_km);
  if (s.empty) return;
  const long ncols = static_cast<long>(g.cols());
  const std::size_t cols = g.cols();
  // Boundary-band cells go through the dot-test kernel as contiguous
  // runs (SIMD lanes when dispatched); the kernel evaluates the same
  // clamped-dot pass test as scan()'s per-cell path, in the same
  // operation order, so the result is bit-identical.
  const simd::KernelTable& kt = simd::kernels();
  const geo::Vec3* centers = &g.center_vec(0);
  std::uint64_t* words = out.words().data();

  detail::RowZones z;
  for (std::size_t r = s.r0; r < s.r1; ++r) {
    const std::size_t base = g.index(r, 0);
    switch (classify_row(s, r, z)) {
      case RowClass::kNaive:  // ill-conditioned window: test the whole row
        kt.annulus_set(centers, base, base + cols, s.v, s.cos_outer,
                       s.cos_inner, words);
        continue;
      case RowClass::kOutside:
        continue;
      case RowClass::kZones:
        break;
    }
    detail::emit_zone_runs(
        z,
        [&](long o_lo, long o_hi) {
          detail::for_col_spans(c_round_, o_lo, o_hi, ncols,
                                [&](long b0, long b1) {
                                  kt.annulus_set(centers,
                                                 base + static_cast<std::size_t>(b0),
                                                 base + static_cast<std::size_t>(b1),
                                                 s.v, s.cos_outer, s.cos_inner,
                                                 words);
                                });
        },
        [&](long o_lo, long o_hi) {
          detail::for_col_spans(c_round_, o_lo, o_hi, ncols,
                                [&](long b0, long b1) {
                                  out.set_span(base + static_cast<std::size_t>(b0),
                                               base + static_cast<std::size_t>(b1));
                                });
        });
  }
}

void CapScanPlan::accumulate_annulus(double inner_km, double outer_km,
                                     std::vector<std::uint64_t>& masks,
                                     unsigned bit) const {
  ageo::detail::require(masks.size() == g_->size(),
                  "CapScanPlan: mask size mismatch");
  accumulate_annulus(inner_km, outer_km, masks.data(), bit);
}

void CapScanPlan::accumulate_annulus(double inner_km, double outer_km,
                                     std::uint64_t* masks,
                                     unsigned bit) const {
  ageo::detail::require(bit < 64, "CapScanPlan: bit must be < 64");
  const std::uint64_t m = 1ULL << bit;
  scan(
      inner_km, outer_km, [&](std::size_t idx) { masks[idx] |= m; },
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) masks[i] |= m;
      });
}

void CapScanPlan::intersect_rows(const detail::AnnulusScan& s, std::size_t lo,
                                 std::size_t hi, Region& out) const {
  const Grid& g = *g_;
  const long ncols = static_cast<long>(g.cols());
  const std::size_t cols = g.cols();
  const auto in_annulus = [&](std::size_t idx) {
    double d = std::clamp(s.v.dot(g.center_vec(idx)), -1.0, 1.0);
    return d >= s.cos_outer && d <= s.cos_inner;
  };
  const simd::KernelTable& kt = simd::kernels();
  const geo::Vec3* centers = &g.center_vec(0);
  std::uint64_t* words = out.words().data();

  detail::RowZones z;
  for (std::size_t r = lo; r < hi; ++r) {
    const std::size_t base = g.index(r, 0);
    switch (classify_row(s, r, z)) {
      case RowClass::kNaive:
        // Only surviving cells need the exact test (AND with a zero bit
        // is a no-op either way).
        out.for_each_set_in(base, base + cols, [&](std::size_t idx) {
          if (!in_annulus(idx)) out.reset(idx);
        });
        continue;
      case RowClass::kOutside:
        out.clear_span(base, base + cols);
        continue;
      case RowClass::kZones:
        break;
    }
    // Columns outside the candidate range are guaranteed outside the
    // annulus: clear the complement of the (possibly wrapped) cand span.
    const long width = z.cand_hi - z.cand_lo + 1;
    if (width < ncols) {
      long c0 = (c_round_ + z.cand_lo) % ncols;
      if (c0 < 0) c0 += ncols;
      if (c0 + width <= ncols) {
        out.clear_span(base, base + static_cast<std::size_t>(c0));
        out.clear_span(base + static_cast<std::size_t>(c0 + width),
                       base + cols);
      } else {
        const long wrap = c0 + width - ncols;
        out.clear_span(base + static_cast<std::size_t>(wrap),
                       base + static_cast<std::size_t>(c0));
      }
    }
    // The core is guaranteed inside the inner exclusion; emit_zones
    // skips it, so clear it here (clamped to cand — everything beyond
    // cand is already gone, and an unclamped core can span > ncols).
    const long core_lo = std::max(z.core_lo, z.cand_lo);
    const long core_hi = std::min(z.core_hi, z.cand_hi);
    if (core_lo <= core_hi) {
      detail::for_col_spans(c_round_, core_lo, core_hi, ncols,
                            [&](long b0, long b1) {
                              out.clear_span(base + static_cast<std::size_t>(b0),
                                             base + static_cast<std::size_t>(b1));
                            });
    }
    // Boundary runs AND pass bits into the surviving words (the kernel
    // tests every run cell; a clear bit stays clear either way, so this
    // matches the old test-surviving-bits-only walk exactly).
    detail::emit_zone_runs(
        z,
        [&](long o_lo, long o_hi) {
          detail::for_col_spans(
              c_round_, o_lo, o_hi, ncols, [&](long b0, long b1) {
                kt.annulus_intersect(centers,
                                     base + static_cast<std::size_t>(b0),
                                     base + static_cast<std::size_t>(b1), s.v,
                                     s.cos_outer, s.cos_inner, words);
              });
        },
        // Guaranteed-inside fill spans: AND with 1 — leave untouched.
        [](long, long) {});
  }
}

void CapScanPlan::intersect_annulus_into(double inner_km, double outer_km,
                                         Region& out) const {
  ageo::detail::require(out.grid() == g_,
                        "CapScanPlan: region on a different grid");
  const Grid& g = *g_;
  const detail::AnnulusScan s(g, center_, inner_km, outer_km);
  if (s.empty) {  // empty annulus: intersection clears everything
    out.clear();
    return;
  }
  // Rows outside the latitude band cannot intersect the annulus.
  const std::size_t cols = g.cols();
  out.clear_span(0, s.r0 * cols);
  out.clear_span(s.r1 * cols, g.size());
  intersect_rows(s, s.r0, s.r1, out);
}

void CapScanPlan::intersect_annulus_into(double inner_km, double outer_km,
                                         Region& out,
                                         const Window& win) const {
  ageo::detail::require(out.grid() == g_,
                        "CapScanPlan: region on a different grid");
  const Grid& g = *g_;
  const std::size_t cols = g.cols();
  const detail::AnnulusScan s(g, center_, inner_km, outer_km);
  if (s.empty) {  // nothing survives anywhere in the window
    out.clear_span(win.r0 * cols, win.r1 * cols);
    return;
  }
  const std::size_t lo = std::max(s.r0, win.r0);
  const std::size_t hi = std::min(s.r1, win.r1);
  // Window rows outside the latitude band cannot survive; rows outside
  // the window hold no set bits by the precondition and stay untouched.
  out.clear_span(win.r0 * cols, std::min(lo, win.r1) * cols);
  out.clear_span(std::max(hi, win.r0) * cols, win.r1 * cols);
  if (lo < hi) intersect_rows(s, lo, hi, out);
}

void CapScanPlan::subtract_annulus_into(double inner_km, double outer_km,
                                        Region& out) const {
  ageo::detail::require(out.grid() == g_,
                        "CapScanPlan: region on a different grid");
  const Grid& g = *g_;
  const detail::AnnulusScan s(g, center_, inner_km, outer_km);
  if (s.empty) return;  // nothing to subtract
  const long ncols = static_cast<long>(g.cols());
  const std::size_t cols = g.cols();
  const auto in_annulus = [&](std::size_t idx) {
    double d = std::clamp(s.v.dot(g.center_vec(idx)), -1.0, 1.0);
    return d >= s.cos_outer && d <= s.cos_inner;
  };
  const simd::KernelTable& kt = simd::kernels();
  const geo::Vec3* centers = &g.center_vec(0);
  std::uint64_t* words = out.words().data();

  detail::RowZones z;
  for (std::size_t r = s.r0; r < s.r1; ++r) {
    const std::size_t base = g.index(r, 0);
    switch (classify_row(s, r, z)) {
      case RowClass::kNaive:
        out.for_each_set_in(base, base + cols, [&](std::size_t idx) {
          if (in_annulus(idx)) out.reset(idx);
        });
        continue;
      case RowClass::kOutside:  // row entirely outside: subtract nothing
        continue;
      case RowClass::kZones:
        break;
    }
    // Boundary runs clear the pass bits (a clear bit stays clear, so
    // this matches the old test-surviving-bits-only walk exactly).
    detail::emit_zone_runs(
        z,
        [&](long o_lo, long o_hi) {
          detail::for_col_spans(
              c_round_, o_lo, o_hi, ncols, [&](long b0, long b1) {
                kt.annulus_subtract(centers,
                                    base + static_cast<std::size_t>(b0),
                                    base + static_cast<std::size_t>(b1), s.v,
                                    s.cos_outer, s.cos_inner, words);
              });
        },
        // Guaranteed-inside fill spans are removed wholesale; the core
        // and everything beyond cand are guaranteed outside the annulus
        // and stay untouched.
        [&](long o_lo, long o_hi) {
          detail::for_col_spans(c_round_, o_lo, o_hi, ncols,
                                [&](long b0, long b1) {
                                  out.clear_span(base + static_cast<std::size_t>(b0),
                                                 base + static_cast<std::size_t>(b1));
                                });
        });
  }
}

const std::vector<double>& CapScanPlan::cell_distances_km() const {
  std::call_once(dist_once_, [this] {
    AGEO_COUNT("grid.plan_cache.distance_tables_built");
    AGEO_TIMED_US("grid.plan_cache.distance_table_us", 1.0, 1e6);
    const Grid& g = *g_;
    std::vector<double> table(g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      const geo::Vec3& u = g.center_vec(i);
      // Exactly the reference multiply's expression, so serving distances
      // from this table cannot perturb a single bit of the posterior.
      double ang = std::atan2(v_.cross(u).norm(), v_.dot(u));
      table[i] = geo::kEarthRadiusKm * ang;
    }
    dist_km_ = std::move(table);
  });
  return dist_km_;
}

// ---- CapPlanCache ----

CapPlanCache::CapPlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::size_t CapPlanCache::KeyHash::operator()(const Key& k) const noexcept {
  auto mix = [](std::size_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::size_t h = std::hash<const void*>{}(k.grid);
  h = mix(h, std::bit_cast<std::uint64_t>(k.cell));
  h = mix(h, std::bit_cast<std::uint64_t>(k.lat));
  h = mix(h, std::bit_cast<std::uint64_t>(k.lon));
  return h;
}

std::shared_ptr<const CapScanPlan> CapPlanCache::plan(
    const Grid& g, const geo::LatLon& center) {
  const Key key{&g, g.cell_deg(), center.lat_deg, center.lon_deg};
  std::lock_guard lock(mu_);
  if (auto it = map_.find(key); it != map_.end()) {
    ++stats_.hits;
    AGEO_COUNT("grid.plan_cache.hits");
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  ++stats_.misses;
  AGEO_COUNT("grid.plan_cache.misses");
  // Building while holding the lock keeps concurrent lookups of the same
  // landmark from duplicating the (microseconds of) construction work.
  AGEO_TIMED_US("grid.plan_cache.build_us", 1.0, 1e6);
  auto built = std::make_shared<const CapScanPlan>(g, center);
  lru_.emplace_front(key, built);
  map_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    ++stats_.evictions;
    AGEO_COUNT("grid.plan_cache.evictions");
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return built;
}

CapPlanCache::Stats CapPlanCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t CapPlanCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

}  // namespace ageo::grid
