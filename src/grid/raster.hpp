// Rasterization of geometric constraints onto the grid.
//
// These functions turn the geometric primitives the algorithms produce
// (caps, rings, polygons) into Regions. Cap/ring rasterization prunes to
// the latitude band the shape can touch and, within each row, to the
// longitude window the shape can reach; cells guaranteed inside are set
// with whole-word fills and only the boundary bands are tested cell by
// cell, which makes small disks cheap even on fine grids. The pruned scan
// is bit-for-bit identical to the naive per-cell scan kept under
// grid::reference below (pinned by raster_equivalence_test).
#pragma once

#include <utility>

#include "geo/geodesy.hpp"
#include "geo/polygon.hpp"
#include "grid/region.hpp"

namespace ageo::grid {

/// Cells whose centers lie within `cap`.
Region rasterize_cap(const Grid& g, const geo::Cap& cap);

/// Cells whose centers lie within `ring`.
Region rasterize_ring(const Grid& g, const geo::Ring& ring);

/// Allocation-free variants: rasterize into `out`, which must be an
/// empty region on `g` (typically a pooled one from grid/scratch.hpp).
/// Same bits as the returning overloads above.
void rasterize_cap_into(const Grid& g, const geo::Cap& cap, Region& out);
void rasterize_ring_into(const Grid& g, const geo::Ring& ring, Region& out);

/// Rows [first, second) of `g` that an annulus of [inner_km, outer_km]
/// around `center` can touch — the same latitude band every annulus scan
/// prunes to. {0, 0} for an empty annulus (outer < 0 or outer < inner).
/// Lets callers that accumulate many constraints (the LCS coverage
/// planes) clear and walk only the union of the touched row windows.
std::pair<std::size_t, std::size_t> annulus_row_band(const Grid& g,
                                                     const geo::LatLon& center,
                                                     double inner_km,
                                                     double outer_km);

/// Cells whose centers lie inside `poly`.
Region rasterize_polygon(const Grid& g, const geo::Polygon& poly);

/// Cells whose centers lie in the latitude band [lat_lo, lat_hi].
Region rasterize_lat_band(const Grid& g, double lat_lo, double lat_hi);

/// Add to `mask` (by bitwise-or) the cell-coverage of a cap; returns the
/// number of newly covered rows scanned. Used by the multilateration
/// engines to accumulate per-cell coverage masks without allocating one
/// Region per landmark. `bit` selects which bit of each cell's mask word
/// to set; `masks` must have g.size() entries.
void accumulate_cap_mask(const Grid& g, const geo::Cap& cap,
                         std::vector<std::uint64_t>& masks, unsigned bit);

/// Same for a ring constraint.
void accumulate_ring_mask(const Grid& g, const geo::Ring& ring,
                          std::vector<std::uint64_t>& masks, unsigned bit);

/// Raw-plane variants for the multi-plane coverage layout of the
/// >64-constraint LCS solver: `masks` points at a plane of at least
/// g.size() words.
void accumulate_cap_mask(const Grid& g, const geo::Cap& cap,
                         std::uint64_t* masks, unsigned bit);
void accumulate_ring_mask(const Grid& g, const geo::Ring& ring,
                          std::uint64_t* masks, unsigned bit);

/// Naive per-cell reference rasterizers: one dot product per cell of the
/// latitude band, no longitude pruning. These define the semantics the
/// fast paths (above and in cap_cache.hpp) must reproduce exactly; tests
/// compare against them. Too slow for production use.
namespace reference {
Region rasterize_cap(const Grid& g, const geo::Cap& cap);
Region rasterize_ring(const Grid& g, const geo::Ring& ring);
}  // namespace reference

}  // namespace ageo::grid
