// Rasterization of geometric constraints onto the grid.
//
// These functions turn the geometric primitives the algorithms produce
// (caps, rings, polygons) into Regions. Cap/ring rasterization prunes to
// the latitude band the shape can touch and, within each row, to the
// longitude window the shape can reach; cells guaranteed inside are set
// with whole-word fills and only the boundary bands are tested cell by
// cell, which makes small disks cheap even on fine grids. The pruned scan
// is bit-for-bit identical to the naive per-cell scan kept under
// grid::reference below (pinned by raster_equivalence_test).
#pragma once

#include "geo/geodesy.hpp"
#include "geo/polygon.hpp"
#include "grid/region.hpp"

namespace ageo::grid {

/// Cells whose centers lie within `cap`.
Region rasterize_cap(const Grid& g, const geo::Cap& cap);

/// Cells whose centers lie within `ring`.
Region rasterize_ring(const Grid& g, const geo::Ring& ring);

/// Cells whose centers lie inside `poly`.
Region rasterize_polygon(const Grid& g, const geo::Polygon& poly);

/// Cells whose centers lie in the latitude band [lat_lo, lat_hi].
Region rasterize_lat_band(const Grid& g, double lat_lo, double lat_hi);

/// Add to `mask` (by bitwise-or) the cell-coverage of a cap; returns the
/// number of newly covered rows scanned. Used by the multilateration
/// engines to accumulate per-cell coverage masks without allocating one
/// Region per landmark. `bit` selects which bit of each cell's mask word
/// to set; `masks` must have g.size() entries.
void accumulate_cap_mask(const Grid& g, const geo::Cap& cap,
                         std::vector<std::uint64_t>& masks, unsigned bit);

/// Same for a ring constraint.
void accumulate_ring_mask(const Grid& g, const geo::Ring& ring,
                          std::vector<std::uint64_t>& masks, unsigned bit);

/// Naive per-cell reference rasterizers: one dot product per cell of the
/// latitude band, no longitude pruning. These define the semantics the
/// fast paths (above and in cap_cache.hpp) must reproduce exactly; tests
/// compare against them. Too slow for production use.
namespace reference {
Region rasterize_cap(const Grid& g, const geo::Cap& cap);
Region rasterize_ring(const Grid& g, const geo::Ring& ring);
}  // namespace reference

}  // namespace ageo::grid
