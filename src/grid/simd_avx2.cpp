// AVX2 kernel table. This TU is the ONLY one compiled with -mavx2 (plus
// -ffp-contract=off so GCC cannot contract the explicit mul/add
// intrinsic pairs into FMAs — the rest of the project targets baseline
// x86-64, which has no FMA, and bit-identity with the scalar table
// depends on every product and sum rounding individually in the same
// order). Everything here is reached only through the runtime-dispatch
// table, after a CPUID check, so no AVX2 instruction can execute on an
// unsupported CPU.
//
// When the AGEO_SIMD CMake option is OFF the flags are absent, __AVX2__
// is not defined, and this file compiles to nullptr-returning stubs.
#include "grid/simd.hpp"

#include "grid/simd_detail.hpp"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace ageo::grid::simd {
namespace {

using detail::AnnulusOp;

// Transpose 4 consecutive Vec3 (12 packed doubles x0 y0 z0 x1 y1 z1 ...)
// into X/Y/Z lane vectors.
inline void load_centers4(const geo::Vec3* c, __m256d& X, __m256d& Y,
                          __m256d& Z) {
  static_assert(sizeof(geo::Vec3) == 3 * sizeof(double));
  const double* p = reinterpret_cast<const double*>(c);
  const __m256d t0 = _mm256_loadu_pd(p);      // x0 y0 z0 x1
  const __m256d t1 = _mm256_loadu_pd(p + 4);  // y1 z1 x2 y2
  const __m256d t2 = _mm256_loadu_pd(p + 8);  // z2 x3 y3 z3
  const __m256d s0 = _mm256_permute2f128_pd(t0, t1, 0x30);  // x0 y0 | x2 y2
  const __m256d s1 = _mm256_permute2f128_pd(t0, t2, 0x21);  // z0 x1 | z2 x3
  const __m256d s2 = _mm256_permute2f128_pd(t1, t2, 0x30);  // y1 z1 | y3 z3
  X = _mm256_shuffle_pd(s0, s1, 0b1010);  // x0 x1 x2 x3
  Y = _mm256_shuffle_pd(s0, s2, 0b0101);  // y0 y1 y2 y3
  Z = _mm256_shuffle_pd(s1, s2, 0b1010);  // z0 z1 z2 z3
}

template <AnnulusOp Op>
void annulus_avx2(const geo::Vec3* centers, std::size_t begin, std::size_t end,
                  const geo::Vec3& v, double cos_outer, double cos_inner,
                  std::uint64_t* words) {
  if (begin >= end) return;
  const __m256d vx = _mm256_set1_pd(v.x);
  const __m256d vy = _mm256_set1_pd(v.y);
  const __m256d vz = _mm256_set1_pd(v.z);
  const __m256d lo1 = _mm256_set1_pd(-1.0);
  const __m256d hi1 = _mm256_set1_pd(1.0);
  const __m256d co = _mm256_set1_pd(cos_outer);
  const __m256d ci = _mm256_set1_pd(cos_inner);
  const std::size_t w0 = begin >> 6;
  const std::size_t w1 = (end - 1) >> 6;
  for (std::size_t wi = w0; wi <= w1; ++wi) {
    const std::size_t lo = std::max(begin, wi << 6);
    const std::size_t hi = std::min(end, (wi << 6) + 64);
    std::uint64_t pass = 0;
    std::size_t j = lo;
    // Scalar head to a 4-cell boundary (lane k of a group lands at bit
    // (j & 63) + k, so groups must not straddle the word).
    const std::size_t head = std::min(hi, (j + 3) & ~std::size_t{3});
    pass |= detail::annulus_pass_bits(centers, j, head, v, cos_outer, cos_inner);
    j = head;
    for (; j + 4 <= hi; j += 4) {
      __m256d X, Y, Z;
      load_centers4(centers + j, X, Y, Z);
      // Same order as Vec3::dot: (x*vx + y*vy) + z*vz.
      const __m256d dot = _mm256_add_pd(
          _mm256_add_pd(_mm256_mul_pd(X, vx), _mm256_mul_pd(Y, vy)),
          _mm256_mul_pd(Z, vz));
      const __m256d cl = _mm256_min_pd(_mm256_max_pd(dot, lo1), hi1);
      const __m256d ok = _mm256_and_pd(_mm256_cmp_pd(cl, co, _CMP_GE_OQ),
                                       _mm256_cmp_pd(cl, ci, _CMP_LE_OQ));
      pass |= static_cast<std::uint64_t>(
                  static_cast<unsigned>(_mm256_movemask_pd(ok)))
              << (j & 63);
    }
    pass |= detail::annulus_pass_bits(centers, j, hi, v, cos_outer, cos_inner);
    const std::uint64_t rm = detail::word_run_mask(
        static_cast<unsigned>(lo - (wi << 6)),
        static_cast<unsigned>(hi - (wi << 6)));
    detail::fold_word<Op>(words[wi], pass, rm);
  }
}

// ---- vector exponential ----------------------------------------------

// exp(-a) for 4 lanes, matching detail::exp_neg_core operation-for-
// operation (see that header for the algorithm notes). Edge lanes
// (underflow / overflow / NaN) may compute garbage in the polynomial
// path — cvtpd_epi32 saturates, no traps — and are overwritten by the
// final blends.
inline __m256d exp_neg4(__m256d a) {
  const __m256d x = _mm256_sub_pd(_mm256_setzero_pd(), a);
  const __m256d nd = _mm256_round_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(detail::kLog2E)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m128i n = _mm256_cvtpd_epi32(nd);
  const __m256d r = _mm256_sub_pd(
      _mm256_sub_pd(x, _mm256_mul_pd(nd, _mm256_set1_pd(detail::kLn2Hi))),
      _mm256_mul_pd(nd, _mm256_set1_pd(detail::kLn2Lo)));
  __m256d p = _mm256_set1_pd(1.0 / 6227020800.0);
#define AGEO_HORNER(c) p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(c))
  AGEO_HORNER(1.0 / 479001600.0);
  AGEO_HORNER(1.0 / 39916800.0);
  AGEO_HORNER(1.0 / 3628800.0);
  AGEO_HORNER(1.0 / 362880.0);
  AGEO_HORNER(1.0 / 40320.0);
  AGEO_HORNER(1.0 / 5040.0);
  AGEO_HORNER(1.0 / 720.0);
  AGEO_HORNER(1.0 / 120.0);
  AGEO_HORNER(1.0 / 24.0);
  AGEO_HORNER(1.0 / 6.0);
  AGEO_HORNER(0.5);
  AGEO_HORNER(1.0);
  AGEO_HORNER(1.0);
#undef AGEO_HORNER
  // Two-step 2^n scaling: n1 = n >> 1 (arithmetic), n2 = n - n1, each
  // built directly in the exponent field. First multiply is exact;
  // the second is the single rounding step (subnormal-correct).
  const __m128i n1 = _mm_srai_epi32(n, 1);
  const __m128i n2 = _mm_sub_epi32(n, n1);
  const __m256i bias = _mm256_set1_epi64x(1023);
  const __m256d s1 = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(_mm256_cvtepi32_epi64(n1), bias), 52));
  const __m256d s2 = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(_mm256_cvtepi32_epi64(n2), bias), 52));
  __m256d res = _mm256_mul_pd(_mm256_mul_pd(p, s1), s2);
  const __m256d zero_mask =
      _mm256_cmp_pd(a, _mm256_set1_pd(detail::kExpZeroCut), _CMP_GE_OQ);
  const __m256d inf_mask =
      _mm256_cmp_pd(a, _mm256_set1_pd(detail::kExpInfCut), _CMP_LE_OQ);
  const __m256d nan_mask = _mm256_cmp_pd(a, a, _CMP_UNORD_Q);
  res = _mm256_blendv_pd(res, _mm256_setzero_pd(), zero_mask);
  res = _mm256_blendv_pd(
      res, _mm256_set1_pd(std::numeric_limits<double>::infinity()), inf_mask);
  res = _mm256_blendv_pd(res, a, nan_mask);
  return res;
}

void exp_neg_avx2(const double* a, double* out, std::size_t n) {
  std::size_t i = 0;
  // Two independent Horner chains in flight to hide the ~13-step
  // mul/add latency.
  for (; i + 8 <= n; i += 8) {
    const __m256d r0 = exp_neg4(_mm256_loadu_pd(a + i));
    const __m256d r1 = exp_neg4(_mm256_loadu_pd(a + i + 4));
    _mm256_storeu_pd(out + i, r0);
    _mm256_storeu_pd(out + i + 4, r1);
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, exp_neg4(_mm256_loadu_pd(a + i)));
  }
  for (; i < n; ++i) out[i] = detail::exp_neg_core(a[i]);
}

inline __m256d ring_arg4(__m256d dist, __m256d mu, __m256d inv_2s2) {
  const __m256d r = _mm256_sub_pd(dist, mu);
  return _mm256_mul_pd(_mm256_mul_pd(r, r), inv_2s2);
}

void ring_multiply_span_avx2(double* density, const double* dist,
                             std::size_t n, double mu_km, double inv_2s2) {
  const __m256d mu = _mm256_set1_pd(mu_km);
  const __m256d is = _mm256_set1_pd(inv_2s2);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_loadu_pd(density + i);
    const __m256d e = exp_neg4(ring_arg4(_mm256_loadu_pd(dist + i), mu, is));
    // Zero cells stay untouched (the scalar path skips them).
    const __m256d nz = _mm256_cmp_pd(d, zero, _CMP_NEQ_OQ);
    _mm256_storeu_pd(density + i,
                     _mm256_blendv_pd(d, _mm256_mul_pd(d, e), nz));
  }
  for (; i < n; ++i) {
    const double d = density[i];
    if (d == 0.0) continue;
    density[i] =
        d * detail::exp_neg_core(detail::ring_arg(dist[i], mu_km, inv_2s2));
  }
}

void ring_multiply_gather_avx2(double* density, const std::uint32_t* didx,
                               const double* dist, const std::uint32_t* gidx,
                               std::size_t n, double mu_km, double inv_2s2) {
  const __m256d mu = _mm256_set1_pd(mu_km);
  const __m256d is = _mm256_set1_pd(inv_2s2);
  // Masked gather with an all-ones mask: same loads as the plain form,
  // but GCC 12's plain-gather intrinsic seeds its result with an
  // undefined value and trips -Wmaybe-uninitialized.
  const __m256d gather_all =
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  std::size_t j = 0;
  alignas(32) double prod[4];
  for (; j + 4 <= n; j += 4) {
    const __m128i gi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(gidx + j));
    const __m256d dist4 = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), dist,
                                                   gi, gather_all, 8);
    const __m256d e = exp_neg4(ring_arg4(dist4, mu, is));
    const __m128i di = _mm_loadu_si128(reinterpret_cast<const __m128i*>(didx + j));
    const __m256d d4 = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), density,
                                                di, gather_all, 8);
    _mm256_store_pd(prod, _mm256_mul_pd(d4, e));
    density[didx[j + 0]] = prod[0];
    density[didx[j + 1]] = prod[1];
    density[didx[j + 2]] = prod[2];
    density[didx[j + 3]] = prod[3];
  }
  for (; j < n; ++j) {
    density[didx[j]] *= detail::exp_neg_core(
        detail::ring_arg(dist[gidx[j]], mu_km, inv_2s2));
  }
}

// ---- multi-plane popcount ---------------------------------------------

// Per-byte nibble-LUT popcount, summed per 64-bit lane via SAD.
inline __m256i popcnt_epi64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nib = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

void popcount_cells_avx2(const std::uint64_t* cover, std::size_t stride,
                         std::size_t planes, std::size_t base, std::size_t n,
                         std::uint32_t* pc) {
  std::size_t j = 0;
  alignas(32) std::uint64_t tmp[4];
  for (; j + 4 <= n; j += 4) {
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t w = 0; w < planes; ++w) {
      acc = _mm256_add_epi64(
          acc, popcnt_epi64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                   cover + w * stride + base + j))));
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc);
    pc[j + 0] = static_cast<std::uint32_t>(tmp[0]);
    pc[j + 1] = static_cast<std::uint32_t>(tmp[1]);
    pc[j + 2] = static_cast<std::uint32_t>(tmp[2]);
    pc[j + 3] = static_cast<std::uint32_t>(tmp[3]);
  }
  for (; j < n; ++j) {
    std::uint32_t s = 0;
    for (std::size_t w = 0; w < planes; ++w) {
      s += static_cast<std::uint32_t>(std::popcount(cover[w * stride + base + j]));
    }
    pc[j] = s;
  }
}

constexpr KernelTable kAvx2Table = {
    Level::kAvx2,
    annulus_avx2<AnnulusOp::kSet>,
    annulus_avx2<AnnulusOp::kIntersect>,
    annulus_avx2<AnnulusOp::kSubtract>,
    exp_neg_avx2,
    ring_multiply_span_avx2,
    ring_multiply_gather_avx2,
    popcount_cells_avx2,
};

}  // namespace

namespace detail {

const KernelTable* avx2_table() noexcept {
  return cpu_supported() ? &kAvx2Table : nullptr;
}

bool avx2_compiled() noexcept { return true; }

}  // namespace detail
}  // namespace ageo::grid::simd

#else  // !(__AVX2__ && __x86_64__)

namespace ageo::grid::simd::detail {

const KernelTable* avx2_table() noexcept { return nullptr; }
bool avx2_compiled() noexcept { return false; }

}  // namespace ageo::grid::simd::detail

#endif
