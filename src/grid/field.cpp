#include "grid/field.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "geo/units.hpp"
#include "geo/vec3.hpp"
#include "grid/cap_cache.hpp"
#include "grid/credible_select.hpp"
#include "grid/raster.hpp"
#include "grid/scratch.hpp"
#include "grid/simd.hpp"
#include "obs/obs.hpp"

namespace ageo::grid {

namespace detail {

// The support constants are documented in field.hpp (they moved there so
// the refinement driver can window the same support annuli).
double gaussian_support_halfwidth_km(double sigma_km) noexcept {
  return sigma_km * std::sqrt(2.0 * kGaussianCut) + kSupportSlackKm;
}

}  // namespace detail

using detail::kGaussianCut;

namespace reference {

void multiply_gaussian_ring(Field& f, const geo::LatLon& center, double mu_km,
                            double sigma_km) {
  ageo::detail::require(f.grid_ != nullptr, "Field: not attached to a grid");
  ageo::detail::require(sigma_km > 0.0, "Field: sigma must be positive");
  ageo::detail::require(geo::is_valid(center), "Field: invalid ring center");
  f.invalidate_caches();
  std::vector<double>& density = f.density_;
  const Grid& grid = *f.grid_;
  const geo::Vec3 v = geo::to_vec3(center);
  const double inv_2s2 = 1.0 / (2.0 * sigma_km * sigma_km);
  for (std::size_t i = 0; i < density.size(); ++i) {
    if (density[i] == 0.0) continue;
    const geo::Vec3& u = grid.center_vec(i);
    double ang = std::atan2(v.cross(u).norm(), v.dot(u));
    double d = geo::kEarthRadiusKm * ang;
    double r = d - mu_km;
    density[i] *= std::exp(-r * r * inv_2s2);
  }
}

}  // namespace reference

Field::Field(const Grid& g) : grid_(&g), density_(g.size(), 1.0) {
  ageo::detail::require(g.size() <= 0xffffffffULL,
                  "Field: grid too large for the live-cell index");
}

void Field::rebind(const Grid& g) {
  ageo::detail::require(g.size() <= 0xffffffffULL,
                  "Field: grid too large for the live-cell index");
  grid_ = &g;
  density_.assign(g.size(), 1.0);
  live_.clear();
  live_valid_ = false;
  mass_valid_ = false;
  mass_ = 0.0;
}

template <typename DistF, typename SupportF>
void Field::multiply_ring_windowed(double mu_km, double sigma_km, DistF&& dist,
                                   SupportF&& support) {
  mass_valid_ = false;
  const double inv_2s2 = 1.0 / (2.0 * sigma_km * sigma_km);
  // The reference evaluates exp(-r * r * inv_2s2); computing
  // a = (r * r) * inv_2s2 and passing -a gives bit-identical arguments
  // (IEEE negation is exact and commutes with multiplication), so both
  // branches below reproduce the reference product exactly: the compare
  // branch because exp gets the same bits, the zeroing branch because
  // a >= kGaussianCut guarantees exp would return +0.0 and x *= 0.0 has
  // the same sign/NaN/inf semantics as x *= (+0.0 result of exp).

  if (live_valid_) {
    // Later rings: only survivors of earlier multiplies can still be
    // nonzero; the cutoff comparison is the support-window test.
    std::size_t keep = 0;
    for (const std::uint32_t i : live_) {
      double& d = density_[i];
      const double r = dist(i) - mu_km;
      const double a = r * r * inv_2s2;
      if (a >= kGaussianCut) {
        d *= 0.0;
      } else {
        d *= std::exp(-a);
      }
      if (d != 0.0) live_[keep++] = i;
    }
    live_.resize(keep);
    return;
  }

  // First windowed multiply on a dense field: rasterize a superset of the
  // ring's support, zero the complement a word at a time, and record the
  // survivors as the live list for the rings that follow. The support
  // Region is a pooled temporary when the field carries an arena.
  const double w = detail::gaussian_support_halfwidth_km(sigma_km);
  Scratch::RegionLease slease = Scratch::region(scratch_, *grid_);
  Region& s = slease.ref();
  support(std::max(0.0, mu_km - w), mu_km + w, s);
  live_.clear();
  live_.reserve(s.count());
  const std::vector<std::uint64_t>& words = s.words();
  const std::size_t n = density_.size();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    const std::size_t base = wi << 6;
    const std::size_t lim = std::min<std::size_t>(64, n - base);
    const std::uint64_t bits = words[wi];
    if (bits == 0) {
      for (std::size_t j = 0; j < lim; ++j) density_[base + j] *= 0.0;
      continue;
    }
    for (std::size_t j = 0; j < lim; ++j) {
      double& d = density_[base + j];
      if (((bits >> j) & 1u) == 0) {
        d *= 0.0;
        continue;
      }
      if (d == 0.0) continue;
      const double r = dist(base + j) - mu_km;
      const double a = r * r * inv_2s2;
      if (a >= kGaussianCut) {
        d *= 0.0;
      } else {
        d *= std::exp(-a);
      }
      if (d != 0.0) live_.push_back(static_cast<std::uint32_t>(base + j));
    }
  }
  live_valid_ = true;
}

void Field::multiply_gaussian_ring(const geo::LatLon& center, double mu_km,
                                   double sigma_km) {
  ageo::detail::require(grid_ != nullptr, "Field: not attached to a grid");
  ageo::detail::require(sigma_km > 0.0, "Field: sigma must be positive");
  ageo::detail::require(!std::isnan(mu_km), "Field: mu must not be NaN");
  ageo::detail::require(geo::is_valid(center), "Field: invalid ring center");
  multiply_gaussian_ring_unchecked(center, mu_km, sigma_km);
}

void Field::multiply_gaussian_ring(const CapScanPlan& plan, double mu_km,
                                   double sigma_km) {
  ageo::detail::require(grid_ != nullptr, "Field: not attached to a grid");
  ageo::detail::require(&plan.grid() == grid_,
                  "Field: plan built on a different grid");
  ageo::detail::require(sigma_km > 0.0, "Field: sigma must be positive");
  ageo::detail::require(!std::isnan(mu_km), "Field: mu must not be NaN");
  multiply_gaussian_ring_unchecked(plan, mu_km, sigma_km);
}

void Field::multiply_gaussian_ring_unchecked(const geo::LatLon& center,
                                             double mu_km, double sigma_km) {
  AGEO_COUNT("grid.ring_multiply.trig");
  AGEO_TIMED_NS("grid.ring_multiply_ns", 100.0, 1e9);
  const geo::Vec3 v = geo::to_vec3(center);
  const Grid& g = *grid_;
  multiply_ring_windowed(
      mu_km, sigma_km,
      [&](std::size_t i) {
        const geo::Vec3& u = g.center_vec(i);
        return geo::kEarthRadiusKm * std::atan2(v.cross(u).norm(), v.dot(u));
      },
      [&](double inner, double outer, Region& out) {
        rasterize_ring_into(g, geo::Ring{center, inner, outer}, out);
      });
}

void Field::multiply_gaussian_ring_unchecked(const CapScanPlan& plan,
                                             double mu_km, double sigma_km) {
  AGEO_COUNT("grid.ring_multiply.plan_served");
  AGEO_TIMED_NS("grid.ring_multiply_ns", 100.0, 1e9);
  const double* dist = plan.cell_distances_km().data();
  if (simd::exp_mode() == simd::ExpMode::kFast) {
    multiply_ring_fast(dist, mu_km, sigma_km,
                       [&](double inner, double outer, Region& out) {
                         plan.rasterize_annulus(inner, outer, out);
                       });
    return;
  }
  multiply_ring_windowed(
      mu_km, sigma_km, [dist](std::size_t i) { return dist[i]; },
      [&](double inner, double outer, Region& out) {
        plan.rasterize_annulus(inner, outer, out);
      });
}

template <typename SupportF>
void Field::multiply_ring_fast(const double* dist, double mu_km,
                               double sigma_km, SupportF&& support) {
  mass_valid_ = false;
  const double inv_2s2 = 1.0 / (2.0 * sigma_km * sigma_km);
  const simd::KernelTable& kt = simd::kernels();

  if (live_valid_) {
    // The live list indexes both the density and the distance table by
    // global cell id, so one gathered kernel call covers the whole pass;
    // stale zeros fall out in the compaction sweep (the kernel leaves a
    // zero cell at zero: 0 * w == 0 for every ring weight w in [0, 1]).
    kt.ring_multiply_gather(density_.data(), live_.data(), dist, live_.data(),
                            live_.size(), mu_km, inv_2s2);
    std::size_t keep = 0;
    for (const std::uint32_t i : live_)
      if (density_[i] != 0.0) live_[keep++] = i;
    live_.resize(keep);
    return;
  }

  // Same support windowing as the exact dense path: full support words go
  // through the contiguous span kernel, partial words gather their set
  // bits, the complement is zeroed wholesale.
  const double w = detail::gaussian_support_halfwidth_km(sigma_km);
  Scratch::RegionLease slease = Scratch::region(scratch_, *grid_);
  Region& s = slease.ref();
  support(std::max(0.0, mu_km - w), mu_km + w, s);
  live_.clear();
  live_.reserve(s.count());
  const std::vector<std::uint64_t>& words = s.words();
  const std::size_t n = density_.size();
  std::uint32_t idxbuf[64];
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    const std::size_t base = wi << 6;
    const std::size_t lim = std::min<std::size_t>(64, n - base);
    const std::uint64_t bits = words[wi];
    if (bits == 0) {
      for (std::size_t j = 0; j < lim; ++j) density_[base + j] *= 0.0;
      continue;
    }
    if (lim == 64 && bits == ~0ull) {
      kt.ring_multiply_span(density_.data() + base, dist + base, 64, mu_km,
                            inv_2s2);
    } else {
      unsigned cnt = 0;
      for (std::size_t j = 0; j < lim; ++j) {
        if ((bits >> j) & 1u) {
          idxbuf[cnt++] = static_cast<std::uint32_t>(base + j);
        } else {
          density_[base + j] *= 0.0;
        }
      }
      kt.ring_multiply_gather(density_.data(), idxbuf, dist, idxbuf, cnt,
                              mu_km, inv_2s2);
    }
    for (std::size_t j = 0; j < lim; ++j) {
      if (density_[base + j] != 0.0)
        live_.push_back(static_cast<std::uint32_t>(base + j));
    }
  }
  live_valid_ = true;
}

void Field::apply_mask(const Region& mask) {
  ageo::detail::require(grid_ != nullptr && mask.grid() == grid_,
                  "Field: mask must share the field's grid");
  mass_valid_ = false;
  live_.clear();
  for (std::size_t i = 0; i < density_.size(); ++i) {
    if (!mask.test(i)) {
      density_[i] = 0.0;
    } else if (density_[i] != 0.0) {
      live_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  live_valid_ = true;
}

double Field::total_mass() const noexcept {
  if (!grid_) return 0.0;
  if (mass_valid_) return mass_;
  double m = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i)
    m += density_[i] * grid_->cell_area_km2(i);
  mass_ = m;
  mass_valid_ = true;
  return m;
}

bool Field::normalize() noexcept {
  const double m = total_mass();
  if (!(m > 0.0) || !std::isfinite(m)) return false;
  // Divide and re-accumulate in one pass. The running sum reads the
  // stored (rounded) quotients in index order, so the cached mass is
  // bit-identical to what a fresh total_mass() scan would return.
  double post = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    density_[i] /= m;
    post += density_[i] * grid_->cell_area_km2(i);
  }
  mass_ = post;
  mass_valid_ = true;
  // Survivor indices are unchanged by a positive rescale (a quotient that
  // underflows to zero merely leaves a stale — harmless — live entry).
  return true;
}

Region Field::credible_region(double mass) const {
  ageo::detail::require(grid_ != nullptr, "Field: not attached to a grid");
  ageo::detail::require(mass > 0.0 && mass <= 1.0,
                  "Field: credible mass must be in (0, 1]");
  Region out(*grid_);
  const double total = total_mass();
  if (!(total > 0.0)) return out;

  Scratch::IndexLease olease = Scratch::indices(scratch_);
  std::vector<std::uint32_t>& order = olease.vec();
  order.reserve(live_valid_ ? live_.size() : density_.size());
  if (live_valid_) {
    for (const std::uint32_t i : live_)
      if (density_[i] > 0.0) order.push_back(i);
  } else {
    for (std::size_t i = 0; i < density_.size(); ++i)
      if (density_[i] > 0.0) order.push_back(static_cast<std::uint32_t>(i));
  }

  // mass == 1 means the entire support, exactly. (Chasing it through the
  // accumulator instead would leave the outcome to summation rounding:
  // once the running sum saturates, tail cells add less than 1 ulp each
  // and `acc >= total` can flip either way.)
  if (mass == 1.0) {
    for (const std::uint32_t i : order) out.set(i);
    return out;
  }

  // Density descending, ties by cell index: a deterministic total order,
  // so the region never depends on sort implementation details.
  const auto denser = [this](std::uint32_t a, std::uint32_t b) {
    return density_[a] > density_[b] ||
           (density_[a] == density_[b] && a < b);
  };
  const auto weight = [this](std::uint32_t i) {
    return density_[i] * grid_->cell_area_km2(i);
  };
  const double target = mass * total;

  // One shared selection core (credible_select.hpp) places the cut; the
  // windowed SubField posterior calls the same code on the same values,
  // which is what keeps the two credible regions bit-identical.
  detail::weighted_select_into(order, denser, weight, target,
                               [&](std::uint32_t i) { out.set(i); });
  return out;
}

std::optional<std::size_t> Field::mode() const noexcept {
  if (!grid_) return std::nullopt;
  std::size_t best = 0;
  double best_d = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    if (density_[i] > best_d) {
      best_d = density_[i];
      best = i;
    }
  }
  if (best_d <= 0.0) return std::nullopt;
  return best;
}

}  // namespace ageo::grid
