#include "grid/field.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "geo/units.hpp"
#include "geo/vec3.hpp"

namespace ageo::grid {

Field::Field(const Grid& g) : grid_(&g), density_(g.size(), 1.0) {}

void Field::multiply_gaussian_ring(const geo::LatLon& center, double mu_km,
                                   double sigma_km) {
  detail::require(grid_ != nullptr, "Field: not attached to a grid");
  detail::require(sigma_km > 0.0, "Field: sigma must be positive");
  detail::require(geo::is_valid(center), "Field: invalid ring center");
  const geo::Vec3 v = geo::to_vec3(center);
  const double inv_2s2 = 1.0 / (2.0 * sigma_km * sigma_km);
  for (std::size_t i = 0; i < density_.size(); ++i) {
    if (density_[i] == 0.0) continue;
    const geo::Vec3& u = grid_->center_vec(i);
    double ang = std::atan2(v.cross(u).norm(), v.dot(u));
    double d = geo::kEarthRadiusKm * ang;
    double r = d - mu_km;
    density_[i] *= std::exp(-r * r * inv_2s2);
  }
}

void Field::apply_mask(const Region& mask) {
  detail::require(grid_ != nullptr && mask.grid() == grid_,
                  "Field: mask must share the field's grid");
  for (std::size_t i = 0; i < density_.size(); ++i)
    if (!mask.test(i)) density_[i] = 0.0;
}

double Field::total_mass() const noexcept {
  if (!grid_) return 0.0;
  double m = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i)
    m += density_[i] * grid_->cell_area_km2(i);
  return m;
}

bool Field::normalize() noexcept {
  double m = total_mass();
  if (!(m > 0.0) || !std::isfinite(m)) return false;
  for (auto& d : density_) d /= m;
  return true;
}

Region Field::credible_region(double mass) const {
  detail::require(grid_ != nullptr, "Field: not attached to a grid");
  detail::require(mass > 0.0 && mass <= 1.0,
                  "Field: credible mass must be in (0, 1]");
  Region out(*grid_);
  double total = total_mass();
  if (!(total > 0.0)) return out;

  std::vector<std::size_t> order;
  order.reserve(density_.size());
  for (std::size_t i = 0; i < density_.size(); ++i)
    if (density_[i] > 0.0) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return density_[a] > density_[b];
  });

  double acc = 0.0;
  const double target = mass * total;
  for (std::size_t idx : order) {
    out.set(idx);
    acc += density_[idx] * grid_->cell_area_km2(idx);
    if (acc >= target) break;
  }
  return out;
}

std::optional<std::size_t> Field::mode() const noexcept {
  if (!grid_) return std::nullopt;
  std::size_t best = 0;
  double best_d = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    if (density_[i] > best_d) {
      best_d = density_[i];
      best = i;
    }
  }
  if (best_d <= 0.0) return std::nullopt;
  return best;
}

}  // namespace ageo::grid
