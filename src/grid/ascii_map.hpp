// Terminal rendering of regions on a world map.
//
// Renders one or more layers (land mask, prediction region, markers)
// into a character raster in plate-carree projection. Used by the
// examples to show predictions the way the paper's figures do.
#pragma once

#include <string>
#include <vector>

#include "geo/latlon.hpp"
#include "grid/region.hpp"

namespace ageo::grid {

class AsciiMap {
 public:
  /// `width` columns cover longitude [-180, 180); rows derive from a
  /// 2:1 aspect ratio (plate carree). Width must be in [20, 360].
  explicit AsciiMap(int width = 120);

  /// Paint every cell of `region` with `glyph`; later layers overwrite
  /// earlier ones.
  void add_layer(const Region& region, char glyph);

  /// Paint a single point marker.
  void add_marker(const geo::LatLon& p, char glyph);

  /// Optionally crop the output rows to a latitude band.
  void crop_latitude(double lat_lo, double lat_hi);

  /// The rendered map, one string per row, north at the top.
  std::vector<std::string> render() const;

  /// Convenience: render and join with newlines.
  std::string to_string() const;

 private:
  int width_;
  int height_;
  double lat_lo_ = -90.0, lat_hi_ = 90.0;
  std::vector<char> cells_;

  int col_of(double lon) const noexcept;
  int row_of(double lat) const noexcept;
};

}  // namespace ageo::grid
