// Region serialization.
//
// Compact run-length text encoding of a Region, so prediction regions
// can leave the process (JSON export, caching across audit epochs, test
// fixtures) without dragging the grid along: "cell_deg:RLE" where the
// RLE alternates run lengths of unset/set cells in row-major order.
#pragma once

#include <string>
#include <string_view>

#include "grid/region.hpp"

namespace ageo::grid {

/// Encode: "<cell_deg>:<n0>,<n1>,<n2>,..." with runs alternating
/// unset/set starting with unset (a leading 0 means the region starts
/// set). Empty region encodes as "<cell_deg>:".
std::string region_to_string(const Region& region);

/// Decode onto `g`. Throws InvalidArgument when the encoding is
/// malformed, the cell size disagrees with `g`, or the runs overflow
/// the grid.
Region region_from_string(const Grid& g, std::string_view encoded);

}  // namespace ageo::grid
