#include "grid/window.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "grid/scratch.hpp"

namespace ageo::grid {

Window full_window(const Grid& g) noexcept {
  return Window{0, g.rows(), 0, g.cols()};
}

std::optional<Window> bounding_window(const Region& region, Scratch* scratch) {
  ageo::detail::require(region.grid() != nullptr,
                        "bounding_window: region not attached to a grid");
  const Grid& g = *region.grid();
  const std::size_t cols = g.cols();

  // One pass over the set cells: exact row band plus the set of occupied
  // columns. Regions this runs on are coarse-level survivors, so the
  // cell count is small; the column list is pooled to keep the refined
  // audit loop allocation-free in steady state.
  Scratch::IndexLease occ_lease = Scratch::indices(scratch);
  std::vector<std::uint32_t>& occ = occ_lease.vec();
  occ.assign((cols + 63) / 64 * 2, 0);  // occupancy bitmap as u32 pairs
  auto* occ_words = occ.data();
  const auto occ_set = [&](std::size_t c) {
    occ_words[(c >> 5)] |= 1u << (c & 31);
  };
  const auto occ_test = [&](std::size_t c) {
    return (occ_words[(c >> 5)] >> (c & 31)) & 1u;
  };

  std::size_t rmin = g.rows(), rmax = 0;
  bool any = false;
  region.for_each_cell([&](std::size_t idx) {
    const std::size_t r = g.row_of(idx);
    if (!any || r < rmin) rmin = r;
    if (!any || r >= rmax) rmax = r + 1;
    any = true;
    occ_set(g.col_of(idx));
  });
  if (!any) return std::nullopt;

  // Shortest circular interval covering the occupied columns = the
  // complement of the largest circular run of empty columns. Walk the
  // columns once, tracking zero-runs; the run wrapping the seam is the
  // leading run joined with the trailing one.
  std::size_t best_len = 0, best_end = 0;  // best gap: [end-len, end)
  std::size_t lead_len = 0;                // empty prefix length
  bool in_lead = true;
  std::size_t run = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    if (!occ_test(c)) {
      ++run;
      if (in_lead) ++lead_len;
      continue;
    }
    in_lead = false;
    if (run > best_len) {
      best_len = run;
      best_end = c;
    }
    run = 0;
  }
  if (lead_len == cols) return std::nullopt;  // unreachable: any == true
  // Trailing run wraps around to the leading one.
  if (run + lead_len > best_len) {
    best_len = run + lead_len;
    best_end = lead_len;  // gap is [cols - run, cols) ++ [0, lead_len)
  }

  Window w;
  w.r0 = rmin;
  w.r1 = rmax;
  if (best_len == 0) {
    w.c0 = 0;
    w.width = cols;
  } else {
    w.c0 = best_end % cols;  // first column after the largest gap
    w.width = cols - best_len;
  }
  return w;
}

Window expand_window(const Window& w, const Grid& g, std::size_t margin) {
  if (w.empty()) return w;
  Window out;
  out.r0 = w.r0 > margin ? w.r0 - margin : 0;
  out.r1 = std::min(w.r1 + margin, g.rows());
  const std::size_t cols = g.cols();
  if (w.width + 2 * margin >= cols) {
    out.c0 = 0;
    out.width = cols;
  } else {
    // The guard above ensures margin < cols, so this cannot underflow.
    out.c0 = (w.c0 + cols - margin) % cols;
    out.width = w.width + 2 * margin;
  }
  return out;
}

Window map_window(const Window& w, const Grid& from, const Grid& to) {
  const double ratio = from.cell_deg() / to.cell_deg();
  const auto k = static_cast<std::size_t>(std::llround(ratio));
  ageo::detail::require(
      k >= 1 && std::abs(ratio - static_cast<double>(k)) < 1e-9,
      "map_window: coarse cell size must be an integer multiple of the "
      "fine one");
  Window out;
  out.r0 = std::min(w.r0 * k, to.rows());
  out.r1 = std::min(w.r1 * k, to.rows());
  if (w.width * k >= to.cols()) {
    out.c0 = 0;
    out.width = to.cols();
  } else {
    out.c0 = w.c0 * k;
    out.width = w.width * k;
  }
  return out;
}

void window_region_into(const Grid& g, const Window& w, const Region* mask,
                        Region& out) {
  ageo::detail::require(out.grid() == &g,
                        "window_region_into: region grid mismatch");
  if (mask)
    ageo::detail::require(mask->grid() == &g,
                          "window_region_into: mask grid mismatch");
  for (std::size_t r = w.r0; r < w.r1; ++r) {
    w.for_row_spans(
        g, r, [&](std::size_t b, std::size_t e) { out.set_span(b, e); });
  }
  // Banded AND: every set bit is inside the window's row band, so the
  // words outside it (all zero here) can skip the mask pass. On a
  // 0.25-degree grid this turns a 16k-word sweep into a window-sized
  // one, once per refined solve.
  if (mask)
    out.intersect_with_in(*mask, w.r0 * g.cols(), w.r1 * g.cols());
}

}  // namespace ageo::grid
