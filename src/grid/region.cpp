#include "grid/region.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "geo/vec3.hpp"

namespace ageo::grid {

Region::Region(const Grid& g)
    : grid_(&g), words_((g.size() + 63) / 64, 0) {}

void Region::check_compatible(const Region& o) const {
  detail::require(grid_ != nullptr && grid_ == o.grid_,
                  "Region: operands must share the same Grid");
}

void Region::trim_tail() noexcept {
  // Clear bits beyond grid()->size() so count()/comparisons stay exact.
  std::size_t n = grid_->size();
  if (n % 64 != 0 && !words_.empty())
    words_.back() &= (1ULL << (n % 64)) - 1;
}

bool Region::contains(const geo::LatLon& p) const noexcept {
  if (!grid_) return false;
  return test(grid_->cell_at(p));
}

std::size_t Region::count() const noexcept {
  std::size_t c = 0;
  for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool Region::empty() const noexcept {
  for (auto w : words_)
    if (w) return false;
  return true;
}

void Region::fill() noexcept {
  for (auto& w : words_) w = ~0ULL;
  if (grid_) trim_tail();
}

void Region::clear() noexcept {
  for (auto& w : words_) w = 0;
}

void Region::rebind(const Grid& g) {
  grid_ = &g;
  words_.assign((g.size() + 63) / 64, 0);
}

Region& Region::operator&=(const Region& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

Region& Region::operator|=(const Region& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

Region& Region::subtract(const Region& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

bool Region::operator==(const Region& o) const noexcept {
  return grid_ == o.grid_ && words_ == o.words_;
}

bool Region::intersects(const Region& o) const {
  check_compatible(o);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & o.words_[i]) return true;
  return false;
}

bool Region::subset_of(const Region& o) const {
  check_compatible(o);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & ~o.words_[i]) return false;
  return true;
}

double Region::area_km2() const noexcept {
  if (!grid_) return 0.0;
  double a = 0.0;
  for_each_cell([&](std::size_t idx) { a += grid_->cell_area_km2(idx); });
  return a;
}

std::optional<geo::LatLon> Region::centroid() const noexcept {
  if (!grid_ || empty()) return std::nullopt;
  geo::Vec3 sum{};
  for_each_cell([&](std::size_t idx) {
    sum += grid_->center_vec(idx) * grid_->cell_area_km2(idx);
  });
  if (sum.norm() == 0.0) return std::nullopt;  // perfectly symmetric region
  return geo::to_latlon(sum);
}

double Region::distance_from_km(const geo::LatLon& p) const noexcept {
  if (!grid_ || empty()) return std::numeric_limits<double>::infinity();
  std::size_t pc = grid_->cell_at(p);
  if (test(pc)) return 0.0;
  geo::Vec3 v = geo::to_vec3(p);
  // Maximise the dot product == minimise the central angle.
  double best_dot = -2.0;
  for_each_cell([&](std::size_t idx) {
    double d = v.dot(grid_->center_vec(idx));
    if (d > best_dot) best_dot = d;
  });
  best_dot = std::min(1.0, std::max(-1.0, best_dot));
  return geo::kEarthRadiusKm * std::acos(best_dot);
}

std::vector<std::size_t> Region::cells() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each_cell([&](std::size_t idx) { out.push_back(idx); });
  return out;
}

}  // namespace ageo::grid
