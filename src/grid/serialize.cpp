#include "grid/serialize.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace ageo::grid {

std::string region_to_string(const Region& region) {
  detail::require(region.grid() != nullptr,
                  "region_to_string: detached region");
  const Grid& g = *region.grid();
  char head[32];
  std::snprintf(head, sizeof head, "%.6g:", g.cell_deg());
  std::string out = head;
  if (region.empty()) return out;

  bool current = false;  // runs start with "unset"
  std::size_t run = 0;
  bool first = true;
  auto flush = [&]() {
    if (!first) out += ',';
    out += std::to_string(run);
    first = false;
  };
  for (std::size_t i = 0; i < g.size(); ++i) {
    bool bit = region.test(i);
    if (bit == current) {
      ++run;
    } else {
      flush();
      current = bit;
      run = 1;
    }
  }
  if (current) flush();  // trailing set-run matters; unset tail implied
  return out;
}

Region region_from_string(const Grid& g, std::string_view encoded) {
  auto colon = encoded.find(':');
  detail::require(colon != std::string_view::npos,
                  "region_from_string: missing ':' header");
  double cell = 0.0;
  {
    std::string head(encoded.substr(0, colon));
    char* end = nullptr;
    cell = std::strtod(head.c_str(), &end);
    detail::require(end && *end == '\0',
                    "region_from_string: bad cell size");
  }
  detail::require(std::abs(cell - g.cell_deg()) < 1e-9,
                  "region_from_string: grid cell size mismatch");

  Region out(g);
  std::string_view body = encoded.substr(colon + 1);
  bool current = false;
  std::size_t pos = 0;
  const char* p = body.data();
  const char* last = body.data() + body.size();
  while (p < last) {
    std::size_t run = 0;
    auto [next, ec] = std::from_chars(p, last, run);
    detail::require(ec == std::errc(), "region_from_string: bad run");
    detail::require(pos + run <= g.size(),
                    "region_from_string: runs overflow the grid");
    if (current) {
      for (std::size_t i = 0; i < run; ++i) out.set(pos + i);
    }
    pos += run;
    current = !current;
    p = next;
    if (p < last) {
      detail::require(*p == ',', "region_from_string: expected ','");
      ++p;
      detail::require(p < last, "region_from_string: trailing ','");
    }
  }
  return out;
}

}  // namespace ageo::grid
