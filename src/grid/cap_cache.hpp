// Per-landmark rasterization plans.
//
// The audit rasterizes disks around the same few hundred landmarks once
// per proxy, at radii that change with every measurement. A CapScanPlan
// front-loads all the trigonometry that depends only on (grid, center):
// per-row dot-product components P = sin(lat0)sin(lat_r) and
// Q = cos(lat0)cos(lat_r), and the cosine of the longitude offset of
// every column relative to the center. Rasterizing at a given radius is
// then threshold comparisons and binary searches over those cached
// cosines — no trig at all — and stays bit-for-bit identical to the
// one-shot rasterizers in raster.hpp (pinned by raster_equivalence_test).
//
// CapPlanCache is a small thread-safe LRU of plans keyed by
// (grid, center), sized for one audit's landmark set; an Auditor owns one
// for its lifetime and shares it across its worker threads.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geo/geodesy.hpp"
#include "grid/annulus_scan.hpp"
#include "grid/region.hpp"

namespace ageo::grid {

struct Window;

/// Precomputed scan geometry for annuli centered at one point on one
/// grid. Immutable after construction; safe to share across threads.
class CapScanPlan {
 public:
  CapScanPlan(const Grid& g, const geo::LatLon& center);

  const Grid& grid() const noexcept { return *g_; }
  const geo::LatLon& center() const noexcept { return center_; }

  /// Set every cell within [inner_km, outer_km] of the center into `out`
  /// (bitwise-or). Bit-identical to rasterize_ring / rasterize_cap on the
  /// same annulus. `out` must be attached to this plan's grid.
  void rasterize_annulus(double inner_km, double outer_km, Region& out) const;

  /// accumulate_cap_mask / accumulate_ring_mask against this plan.
  void accumulate_annulus(double inner_km, double outer_km,
                          std::vector<std::uint64_t>& masks,
                          unsigned bit) const;

  /// Same, into a raw per-cell mask plane of at least grid().size()
  /// words (the multi-plane coverage layout of the >64-constraint LCS
  /// solver; mlat::largest_consistent_subset).
  void accumulate_annulus(double inner_km, double outer_km,
                          std::uint64_t* masks, unsigned bit) const;

  /// Fused intersect: out &= { cells within [inner_km, outer_km] },
  /// without materialising the annulus. Rows outside the latitude band
  /// and row segments the zone analysis proves outside the annulus are
  /// cleared with whole-word stores; boundary cells are re-tested with
  /// the exact clamped-dot expression only where `out` still has a bit
  /// set; guaranteed-inside fills are left untouched (AND with 1).
  /// Bit-identical to `out &= tmp` after rasterize_annulus into an empty
  /// tmp — the per-cell membership values are computed by the same
  /// expressions, only the order of the AND changes.
  void intersect_annulus_into(double inner_km, double outer_km,
                              Region& out) const;

  /// Window-clipped fused intersect for the coarse-to-fine refinement
  /// driver (mlat/refine.hpp): the row loop and the outside-band clears
  /// are restricted to `win`'s row range. Precondition: `out` has no set
  /// bit outside the window (the driver seeds it from
  /// window_region_into), so the cells the clipped scan never visits are
  /// already zero and the result equals the unclipped kernel bit for bit
  /// — inside the window the per-row work is the very same code path.
  void intersect_annulus_into(double inner_km, double outer_km, Region& out,
                              const Window& win) const;

  /// Fused subtract: out &= ~{ cells within [inner_km, outer_km] }.
  /// Bit-identical to rasterize_annulus + Region::subtract, by the same
  /// argument as intersect_annulus_into.
  void subtract_annulus_into(double inner_km, double outer_km,
                             Region& out) const;

  /// Per-cell great-circle distance (km) from the plan's center, by the
  /// exact kEarthRadiusKm * atan2(cross, dot) formula Field's reference
  /// ring multiply uses — plan-served multiplies are therefore
  /// bit-identical to it while doing zero trig per ring. Built lazily on
  /// first use and kept for the plan's lifetime: 8 bytes per cell
  /// (~0.5 MB on the audit's 1-degree grid, ~8.3 MB at 0.25 degrees),
  /// bounded overall by the owning CapPlanCache's LRU capacity. Only the
  /// probability-field path pays for it; pure rasterization users never
  /// trigger the build. Thread-safe (call_once).
  const std::vector<double>& cell_distances_km() const;

 private:
  /// How one grid row relates to an annulus being scanned.
  enum class RowClass {
    kOutside,  ///< entirely beyond the outer radius — no cell can pass
    kNaive,    ///< ill-conditioned longitude window — test every cell
    kZones,    ///< zone ranges in `z` are valid
  };
  /// Shared zone analysis of scan() and the fused kernels: classify row
  /// `r` against `s` and, for kZones, fill `z` with the cand/fill/hole/
  /// core offset ranges. Identical arithmetic on every path keeps the
  /// fused kernels bit-compatible with rasterize_annulus.
  RowClass classify_row(const detail::AnnulusScan& s, std::size_t r,
                        detail::RowZones& z) const;

  /// Row loop shared by the full and window-clipped intersect kernels:
  /// AND the annulus into `out` over rows [lo, hi). One body for both
  /// entry points is what keeps the clipped kernel bit-compatible with
  /// the full one by construction.
  void intersect_rows(const detail::AnnulusScan& s, std::size_t lo,
                      std::size_t hi, Region& out) const;

  template <typename CellF, typename SpanF>
  void scan(double inner_km, double outer_km, CellF&& f, SpanF&& fs) const;

  const Grid* g_;
  geo::LatLon center_;
  geo::Vec3 v_;
  long c_round_ = 0;   ///< column index nearest the center longitude
  double frac_ = 0.0;  ///< center's sub-column offset, in [-0.5, 0.5]
  std::vector<double> row_p_, row_q_;  ///< per row: P, Q of d = P + Q cos
  /// cos of the longitude offset at integer column offsets to the right
  /// (o = +j) and left (o = -j) of c_round_; both monotone nonincreasing,
  /// which is what turns a radius query into two binary searches.
  std::vector<double> cos_right_, cos_left_;
  /// Lazily-built distance table (cell_distances_km).
  mutable std::once_flag dist_once_;
  mutable std::vector<double> dist_km_;
};

/// Thread-safe LRU cache of CapScanPlans keyed by (grid, center).
class CapPlanCache {
 public:
  /// `capacity` bounds resident plans; at the audit's default 1-degree
  /// grid a plan is ~7 KB, so the default is ~4 MB worst case. A plan's
  /// lazy distance table (built on the Spotter path) adds 8 bytes/cell
  /// (~0.5 MB at 1 degree), and an evicted+refetched plan must rebuild
  /// it — size the cache to the landmark count when auditing with
  /// Spotter (Auditor does this automatically; see
  /// AuditConfig::plan_cache_capacity).
  explicit CapPlanCache(std::size_t capacity = 512);

  /// Plan for annuli centered at `center` on `g`, built on first use.
  /// The returned plan stays valid after eviction (shared ownership);
  /// `g` must outlive it.
  std::shared_ptr<const CapScanPlan> plan(const Grid& g,
                                          const geo::LatLon& center);

  struct Stats {
    std::uint64_t hits = 0, misses = 0, evictions = 0;
  };
  Stats stats() const;
  std::size_t size() const;

 private:
  struct Key {
    const Grid* grid;
    /// Cell size rides along with the pointer: refinement contexts own
    /// short-lived coarse grids, and if a freed grid's address is reused
    /// by a new Grid the stale entry must at least be for the same
    /// geometry (plans depend only on the cell size, so an
    /// address+cell_deg match serves identical values).
    double cell;
    double lat, lon;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  using Entry = std::pair<Key, std::shared_ptr<const CapScanPlan>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  Stats stats_;
};

}  // namespace ageo::grid
