// Runtime-dispatched SIMD kernels for the grid/mlat hot paths.
//
// Three kernel families (DESIGN.md §13):
//   - annulus dot-test runs: evaluate the exact clamped-dot pass test for
//     a contiguous run of cells and fold the pass bits into a Region's
//     words (set / intersect / subtract). The vector lanes multiply and
//     add in exactly the scalar expression's order, so the AVX2 path is
//     bit-for-bit identical to the scalar one (see simd_avx2.cpp for the
//     codegen argument) — it is a pure speedup, pinned by
//     raster_equivalence_test and the dispatch-agreement suite.
//   - Gaussian ring multiplies: density[i] *= exp(-((dist-mu)^2/2s^2)).
//     The default ("exact") mode keeps libm's std::exp per cell and is
//     bit-identical everywhere; the opt-in fast mode substitutes a
//     vectorized exponential whose worst-case error is pinned in ULPs by
//     simd_test (the a >= 746 hard-underflow cutoff is preserved exactly
//     in both modes).
//   - multi-plane popcount: per-cell coverage counts across the sparse
//     LCS engine's bit planes (integer, trivially bit-identical).
//
// Dispatch: a process-wide kernel table chosen from the compile gate
// (-DAGEO_SIMD), CPUID, and the AGEO_SIMD env override; force_level()
// lets tests and benches pin either path on the same build.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geo/vec3.hpp"

namespace ageo::grid::simd {

enum class Level { kScalar = 0, kAvx2 = 1 };

/// Opt-in approximation mode for the ring-multiply exponential. kExact
/// (the default) calls std::exp per surviving cell — bit-identical to
/// the reference oracle; kFast uses the vectorized exponential (within
/// the ULP bound pinned by simd_test) and is for throughput-critical
/// callers that accept approximate posteriors. Env: AGEO_SIMD_EXP=fast.
enum class ExpMode { kExact = 0, kFast = 1 };

/// True when the AVX2 kernel TU was compiled in (-DAGEO_SIMD=ON on an
/// x86-64 toolchain).
bool compiled() noexcept;

/// True when the running CPU (and OS) support AVX2.
bool cpu_supported() noexcept;

/// The level the kernel table currently dispatches to. Resolved once at
/// first use: kAvx2 iff compiled() && cpu_supported() and the AGEO_SIMD
/// env var is not "off"/"scalar"; overridable via force_level().
Level active_level() noexcept;

/// Pin the dispatch level (test/bench hook). Requests above what the
/// build/CPU support are clamped to kScalar. Not thread-safe against
/// concurrent kernel use; call from single-threaded setup code.
void force_level(Level level) noexcept;

ExpMode exp_mode() noexcept;
void set_exp_mode(ExpMode mode) noexcept;

/// One resolved set of kernel entry points. All pointers are always
/// valid; the scalar table is the fallback for every entry.
struct KernelTable {
  Level level;

  // ---- annulus pass-test runs ----
  // For cells idx in [begin, end) (contiguous global indices), evaluate
  //   d = clamp(v . centers[idx], -1, 1); pass = d >= cos_outer && d <= cos_inner
  // and fold into the region's word array:
  //   set:       word bit |= pass
  //   intersect: word bit &= pass   (bits outside [begin, end) untouched)
  //   subtract:  word bit &= !pass  (bits outside [begin, end) untouched)
  void (*annulus_set)(const geo::Vec3* centers, std::size_t begin,
                      std::size_t end, const geo::Vec3& v, double cos_outer,
                      double cos_inner, std::uint64_t* words);
  void (*annulus_intersect)(const geo::Vec3* centers, std::size_t begin,
                            std::size_t end, const geo::Vec3& v,
                            double cos_outer, double cos_inner,
                            std::uint64_t* words);
  void (*annulus_subtract)(const geo::Vec3* centers, std::size_t begin,
                           std::size_t end, const geo::Vec3& v,
                           double cos_outer, double cos_inner,
                           std::uint64_t* words);

  // ---- fast exponential (kFast ring multiplies + its ULP test) ----
  // out[i] = exp(-a[i]), with the field fast path's exact edge
  // semantics: a >= 746 -> +0.0, a <= -710 -> +inf, NaN -> NaN,
  // +/-0.0 -> 1.0 exactly.
  void (*exp_neg)(const double* a, double* out, std::size_t n);

  // density[i] *= exp_neg((dist[i] - mu)^2 * inv_2s2) for i in [0, n),
  // skipping (preserving) cells with density == 0.0.
  void (*ring_multiply_span)(double* density, const double* dist,
                             std::size_t n, double mu_km, double inv_2s2);

  // Gathered variant for live-cell lists:
  //   density[didx[j]] *= exp_neg((dist[gidx[j]] - mu)^2 * inv_2s2).
  // didx/gidx may alias (flat fields index density and distance by the
  // same cell id); entries must be distinct within the call.
  void (*ring_multiply_gather)(double* density, const std::uint32_t* didx,
                               const double* dist, const std::uint32_t* gidx,
                               std::size_t n, double mu_km, double inv_2s2);

  // ---- multi-plane popcount (sparse LCS max-coverage sweep) ----
  // pc[j] = sum over w < planes of popcount(cover[w * stride + base + j])
  // for j in [0, n).
  void (*popcount_cells)(const std::uint64_t* cover, std::size_t stride,
                         std::size_t planes, std::size_t base, std::size_t n,
                         std::uint32_t* pc);
};

/// The currently active kernel table (atomic snapshot; hot-path callers
/// should load it once per scan, not per run).
const KernelTable& kernels() noexcept;

/// The two tables, for direct A/B comparisons in tests and benches.
const KernelTable& scalar_kernels() noexcept;
/// Null when the AVX2 TU is not compiled in or the CPU lacks support.
const KernelTable* avx2_kernels() noexcept;

}  // namespace ageo::grid::simd
