#include "grid/subfield.hpp"

#include <cmath>

#include "common/error.hpp"
#include "geo/units.hpp"
#include "geo/vec3.hpp"
#include "grid/cap_cache.hpp"
#include "grid/credible_select.hpp"
#include "grid/field.hpp"
#include "grid/simd.hpp"
#include "obs/obs.hpp"

namespace ageo::grid {

using detail::kGaussianCut;

SubField::SubField(const Grid& g, const Window& w, Scratch* scratch)
    : grid_(&g),
      win_(w),
      scratch_(scratch),
      density_(Scratch::doubles(scratch)),
      global_(Scratch::indices(scratch)),
      live_(Scratch::indices(scratch)) {
  ageo::detail::require(g.size() <= 0xffffffffULL,
                        "SubField: grid too large for the cell index");
  ageo::detail::require(w.r1 <= g.rows() && w.width <= g.cols(),
                        "SubField: window exceeds the grid");
  std::vector<std::uint32_t>& global = global_.vec();
  global.reserve(w.cells());
  // for_row_spans emits a wrapped row's low-column part first, so this
  // walk — and therefore the local ordering — is ascending in global
  // cell index, which the mass sums and the credible selection rely on.
  for (std::size_t r = w.r0; r < w.r1; ++r) {
    w.for_row_spans(g, r, [&](std::size_t b, std::size_t e) {
      for (std::size_t idx = b; idx < e; ++idx)
        global.push_back(static_cast<std::uint32_t>(idx));
    });
  }
  density_.vec().assign(global.size(), 1.0);
}

SubField::SubField(const Grid& g, const Window& w, const Region& seed,
                   Scratch* scratch)
    : SubField(g, w, scratch) {
  ageo::detail::require(seed.grid() == &g,
                        "SubField: seed must share the grid");
  // Non-seed cells get the literal +0.0 the flat chain's `d *= 0.0`
  // produces (densities are nonnegative, so the flat zero is +0.0 too);
  // every later multiply keeps them at +0.0 whichever branch it takes,
  // so the seeded start is bit-identical to multiplying the zeros in.
  std::vector<double>& density = density_.vec();
  const std::vector<std::uint32_t>& global = global_.vec();
  std::vector<std::uint32_t>& live = live_.vec();
  live.clear();
  for (std::size_t l = 0; l < density.size(); ++l) {
    if (seed.test(global[l]))
      live.push_back(static_cast<std::uint32_t>(l));
    else
      density[l] = 0.0;
  }
  live_valid_ = true;
}

void SubField::apply_mask(const Region& mask) {
  ageo::detail::require(mask.grid() == grid_,
                        "SubField: mask must share the grid");
  mass_valid_ = false;
  std::vector<double>& density = density_.vec();
  const std::vector<std::uint32_t>& global = global_.vec();
  std::vector<std::uint32_t>& live = live_.vec();
  live.clear();
  for (std::size_t l = 0; l < density.size(); ++l) {
    if (!mask.test(global[l])) {
      density[l] = 0.0;
    } else if (density[l] != 0.0) {
      live.push_back(static_cast<std::uint32_t>(l));
    }
  }
  live_valid_ = true;
}

template <typename DistF>
void SubField::multiply_ring(double mu_km, double sigma_km, DistF&& dist) {
  mass_valid_ = false;
  const double inv_2s2 = 1.0 / (2.0 * sigma_km * sigma_km);
  std::vector<double>& density = density_.vec();
  const std::vector<std::uint32_t>& global = global_.vec();
  std::vector<std::uint32_t>& live = live_.vec();
  // Same per-cell branches as Field::multiply_ring_windowed. Cells the
  // flat dense path zeroes wholesale (outside the rasterized support
  // superset) satisfy a >= kGaussianCut here — that containment is the
  // support window's correctness guarantee — so the exact comparison
  // multiplies them by the same bit-exact +0.0.

  if (live_valid_) {
    std::size_t keep = 0;
    for (const std::uint32_t l : live) {
      double& d = density[l];
      const double r = dist(global[l]) - mu_km;
      const double a = r * r * inv_2s2;
      if (a >= kGaussianCut) {
        d *= 0.0;
      } else {
        d *= std::exp(-a);
      }
      if (d != 0.0) live[keep++] = l;
    }
    live.resize(keep);
    return;
  }

  live.clear();
  for (std::size_t l = 0; l < density.size(); ++l) {
    double& d = density[l];
    if (d == 0.0) continue;
    const double r = dist(global[l]) - mu_km;
    const double a = r * r * inv_2s2;
    if (a >= kGaussianCut) {
      d *= 0.0;
    } else {
      d *= std::exp(-a);
    }
    if (d != 0.0) live.push_back(static_cast<std::uint32_t>(l));
  }
  live_valid_ = true;
}

void SubField::multiply_gaussian_ring_unchecked(const geo::LatLon& center,
                                                double mu_km,
                                                double sigma_km) {
  AGEO_COUNT("grid.ring_multiply.sub_trig");
  AGEO_TIMED_NS("grid.ring_multiply_ns", 100.0, 1e9);
  const geo::Vec3 v = geo::to_vec3(center);
  const Grid& g = *grid_;
  multiply_ring(mu_km, sigma_km, [&](std::size_t i) {
    const geo::Vec3& u = g.center_vec(i);
    return geo::kEarthRadiusKm * std::atan2(v.cross(u).norm(), v.dot(u));
  });
}

void SubField::multiply_gaussian_ring_unchecked(const CapScanPlan& plan,
                                                double mu_km,
                                                double sigma_km) {
  AGEO_COUNT("grid.ring_multiply.sub_plan_served");
  AGEO_TIMED_NS("grid.ring_multiply_ns", 100.0, 1e9);
  const double* dist = plan.cell_distances_km().data();
  if (simd::exp_mode() == simd::ExpMode::kFast) {
    multiply_ring_fast(dist, mu_km, sigma_km);
    return;
  }
  multiply_ring(mu_km, sigma_km, [dist](std::size_t i) { return dist[i]; });
}

void SubField::multiply_ring_fast(const double* dist, double mu_km,
                                  double sigma_km) {
  mass_valid_ = false;
  const double inv_2s2 = 1.0 / (2.0 * sigma_km * sigma_km);
  const simd::KernelTable& kt = simd::kernels();
  std::vector<double>& density = density_.vec();
  const std::vector<std::uint32_t>& global = global_.vec();
  std::vector<std::uint32_t>& live = live_.vec();
  // The gather kernel reads the density by window-local index and the
  // distance table by global index, so the two index streams differ;
  // block buffers keep the kernel calls allocation-free.
  constexpr std::size_t kBlock = 256;
  std::uint32_t buf[kBlock];

  if (live_valid_) {
    const std::size_t nlive = live.size();
    for (std::size_t b0 = 0; b0 < nlive; b0 += kBlock) {
      const std::size_t m = std::min(kBlock, nlive - b0);
      for (std::size_t j = 0; j < m; ++j) buf[j] = global[live[b0 + j]];
      kt.ring_multiply_gather(density.data(), live.data() + b0, dist, buf, m,
                              mu_km, inv_2s2);
    }
    std::size_t keep = 0;
    for (const std::uint32_t l : live)
      if (density[l] != 0.0) live[keep++] = l;
    live.resize(keep);
    return;
  }

  live.clear();
  const std::size_t n = density.size();
  for (std::size_t b0 = 0; b0 < n; b0 += kBlock) {
    const std::size_t m = std::min(kBlock, n - b0);
    for (std::size_t j = 0; j < m; ++j)
      buf[j] = static_cast<std::uint32_t>(b0 + j);
    kt.ring_multiply_gather(density.data(), buf, dist, global.data() + b0, m,
                            mu_km, inv_2s2);
    for (std::size_t j = 0; j < m; ++j) {
      if (density[b0 + j] != 0.0)
        live.push_back(static_cast<std::uint32_t>(b0 + j));
    }
  }
  live_valid_ = true;
}

double SubField::total_mass() const noexcept {
  if (mass_valid_) return mass_;
  // Ascending global order; the cells the flat scan visits and this one
  // skips are all zero there and add bit-exact +0.0.
  const std::vector<double>& density = density_.vec();
  const std::vector<std::uint32_t>& global = global_.vec();
  double m = 0.0;
  for (std::size_t l = 0; l < density.size(); ++l)
    m += density[l] * grid_->cell_area_km2(global[l]);
  mass_ = m;
  mass_valid_ = true;
  return m;
}

bool SubField::normalize() noexcept {
  const double m = total_mass();
  if (!(m > 0.0) || !std::isfinite(m)) return false;
  std::vector<double>& density = density_.vec();
  const std::vector<std::uint32_t>& global = global_.vec();
  double post = 0.0;
  for (std::size_t l = 0; l < density.size(); ++l) {
    density[l] /= m;
    post += density[l] * grid_->cell_area_km2(global[l]);
  }
  mass_ = post;
  mass_valid_ = true;
  return true;
}

Region SubField::credible_region(double mass) const {
  ageo::detail::require(mass > 0.0 && mass <= 1.0,
                        "SubField: credible mass must be in (0, 1]");
  Region out(*grid_);
  const double total = total_mass();
  if (!(total > 0.0)) return out;

  const std::vector<double>& density = density_.vec();
  const std::vector<std::uint32_t>& global = global_.vec();

  // Candidate order: window-local indices of nonzero cells, ascending —
  // the same cells, in the same (global) order, as the flat field's
  // candidate list.
  Scratch::IndexLease olease = Scratch::indices(scratch_);
  std::vector<std::uint32_t>& order = olease.vec();
  const std::vector<std::uint32_t>& live = live_.vec();
  order.reserve(live_valid_ ? live.size() : density.size());
  if (live_valid_) {
    for (const std::uint32_t l : live)
      if (density[l] > 0.0) order.push_back(l);
  } else {
    for (std::size_t l = 0; l < density.size(); ++l)
      if (density[l] > 0.0) order.push_back(static_cast<std::uint32_t>(l));
  }

  if (mass == 1.0) {  // the entire support, exactly (see Field)
    for (const std::uint32_t l : order) out.set(global[l]);
    return out;
  }

  // Local ordering is ascending in global index, so tie-breaking on the
  // global index is the flat comparator on the same values.
  const auto denser = [&](std::uint32_t a, std::uint32_t b) {
    return density[a] > density[b] ||
           (density[a] == density[b] && global[a] < global[b]);
  };
  const auto weight = [&](std::uint32_t l) {
    return density[l] * grid_->cell_area_km2(global[l]);
  };
  const double target = mass * total;
  detail::weighted_select_into(order, denser, weight, target,
                               [&](std::uint32_t l) { out.set(global[l]); });
  return out;
}

}  // namespace ageo::grid
