// Internal machinery of the pruned annulus rasterizer.
//
// Shared by raster.cpp (one-shot scans) and cap_cache.cpp (per-landmark
// plans). Both reduce one grid row to four concentric zones around the
// column nearest the annulus center, measured as integer column offsets:
//
//   |offset|  <  core : guaranteed inside the inner exclusion — skipped
//   ...      in hole  : near the inner boundary — tested cell by cell
//   ...      in fill  : guaranteed inside the annulus — set via word fills
//   ...      in cand  : near the outer boundary — tested cell by cell
//   |offset| out cand : guaranteed outside — never visited
//
// "Guaranteed" is backed by a safety margin of kDotMargin in dot-product
// space plus one cell of slack in column space, both of which dwarf every
// floating-point error in the zone computation; tested cells evaluate the
// exact same clamped-dot expression as the naive scan, so the pruned scan
// is bit-for-bit identical to it (pinned by raster_equivalence_test).
#pragma once

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstddef>
#include <numbers>
#include <tuple>

#include "geo/units.hpp"
#include "geo/vec3.hpp"
#include "grid/grid.hpp"

namespace ageo::grid::detail {

/// Shared setup of an annulus scan: distance bounds converted to
/// dot-product bounds, plus the latitude band the annulus can touch.
/// d <= r  <=>  angle <= r/R  <=>  dot >= cos(r/R), for r/R in [0, pi].
/// Every scan flavor (naive, pruned, plan-cached) builds thresholds from
/// this one struct so their pass/fail tests are the same expressions.
struct AnnulusScan {
  bool empty = true;
  std::size_t r0 = 0, r1 = 0;
  geo::Vec3 v;
  double cos_outer = 1.0, cos_inner = 1.0;
  double inner_clamped = 0.0;

  AnnulusScan(const Grid& g, const geo::LatLon& center, double inner_km,
              double outer_km) {
    if (outer_km < 0 || outer_km < inner_km) return;
    empty = false;
    const double outer_capped =
        std::min(outer_km, geo::kEarthRadiusKm * std::numbers::pi);
    const double dlat = geo::rad_to_deg(outer_capped / geo::kEarthRadiusKm);
    // Half a cell of slack so cell centers right at the band edge are kept.
    std::tie(r0, r1) = g.rows_in_lat_band(center.lat_deg - dlat - g.cell_deg(),
                                          center.lat_deg + dlat + g.cell_deg());
    v = geo::to_vec3(center);
    cos_outer = std::cos(outer_capped / geo::kEarthRadiusKm);
    inner_clamped =
        std::clamp(inner_km, 0.0, geo::kEarthRadiusKm * std::numbers::pi);
    cos_inner = std::cos(inner_clamped / geo::kEarthRadiusKm);
  }
};

/// Safety margin in dot-product space between "guaranteed" zone boundaries
/// and the exact thresholds. Rounding differences between the analytic
/// per-row expression P + Q*cos(dlon) and the naive dot product are a few
/// ulps (~1e-15); 1e-9 leaves six orders of magnitude of headroom.
inline constexpr double kDotMargin = 1e-9;

/// Rows where Q = cos(center_lat)*cos(row_lat) falls below this fall back
/// to the naive per-cell scan: dividing by a tiny Q makes the longitude
/// window ill-conditioned. Only hits polar rows and pole-centered caps,
/// both of which are short or rare.
inline constexpr double kMinQ = 1e-3;

/// Sentinel start for an empty interval: lo > hi for every reachable
/// offset, and `lo - 1` cannot overflow.
inline constexpr long kEmptyLo = LONG_MAX / 2;

/// One row's zones, as inclusive ranges of column offsets relative to the
/// column nearest the annulus center. Empty ranges have lo > hi.
struct RowZones {
  long cand_lo, cand_hi;  ///< candidates; width <= cols, everything else fails
  long fill_lo, fill_hi;  ///< guaranteed pass (modulo the hole)
  long hole_lo, hole_hi;  ///< inner-boundary band inside fill; re-test
  long core_lo, core_hi;  ///< guaranteed fail inside the hole; skip
};

/// Radial zone half-widths in units of columns; negative means absent.
/// Invariants the caller must provide: core <= hole and fill <= cand
/// whenever both sides of each pair are present.
struct RadialBounds {
  double core = -1.0;
  double hole = -1.0;
  double fill = -1.0;
  double cand = -1.0;
};

/// Turn radial half-widths into integer offset ranges. `frac` is the
/// fractional position of the annulus center between column centers, in
/// [-0.5, 0.5]; `ncols` bounds the candidate range so a wrapped scan
/// visits every column exactly once.
inline RowZones zones_from_radii(double frac, const RadialBounds& b,
                                 long ncols) {
  RowZones z;
  z.cand_lo = static_cast<long>(std::ceil(frac - b.cand));
  z.cand_hi = static_cast<long>(std::floor(frac + b.cand));
  if (z.cand_hi - z.cand_lo + 1 > ncols) {  // annulus wraps the whole row
    z.cand_lo = -(ncols / 2);
    z.cand_hi = z.cand_lo + ncols - 1;
  }
  if (b.fill >= 0.0) {
    z.fill_lo = std::max(z.cand_lo, static_cast<long>(std::ceil(frac - b.fill)));
    z.fill_hi =
        std::min(z.cand_hi, static_cast<long>(std::floor(frac + b.fill)));
  } else {
    z.fill_lo = kEmptyLo;
    z.fill_hi = kEmptyLo - 1;
  }
  if (b.hole > 0.0) {  // strict interior: cells at exactly `hole` are outside
    z.hole_lo = static_cast<long>(std::floor(frac - b.hole)) + 1;
    z.hole_hi = static_cast<long>(std::ceil(frac + b.hole)) - 1;
  } else {
    z.hole_lo = kEmptyLo;
    z.hole_hi = kEmptyLo - 1;
  }
  if (b.core > 0.0) {
    z.core_lo = static_cast<long>(std::floor(frac - b.core)) + 1;
    z.core_hi = static_cast<long>(std::ceil(frac + b.core)) - 1;
  } else {
    z.core_lo = kEmptyLo;
    z.core_hi = kEmptyLo - 1;
  }
  return z;
}

/// Walk one row's zones in ascending offset order. `test(o)` is called for
/// every boundary-band offset (caller evaluates the exact dot product);
/// `fill(o_lo, o_hi)` for every maximal run of guaranteed-pass offsets.
template <typename TestO, typename FillO>
inline void emit_zones(const RowZones& z, TestO&& test, FillO&& fill) {
  for (long o = z.cand_lo; o <= z.cand_hi;) {
    if (o >= z.core_lo && o <= z.core_hi) {
      o = z.core_hi + 1;
      continue;
    }
    const bool in_hole = o >= z.hole_lo && o <= z.hole_hi;
    if (!in_hole && o >= z.fill_lo && o <= z.fill_hi) {
      long end = z.fill_hi;
      if (o < z.hole_lo) end = std::min(end, z.hole_lo - 1);
      fill(o, end);
      o = end + 1;
      continue;
    }
    test(o);
    ++o;
  }
}

/// Same walk as emit_zones, but boundary-band offsets are grouped into
/// maximal inclusive runs handed to `run(o_lo, o_hi)` instead of one
/// callback per offset — the shape the SIMD dot-test kernels consume.
/// The set of offsets visited (and the fills emitted) is identical to
/// emit_zones by construction.
template <typename RunO, typename FillO>
inline void emit_zone_runs(const RowZones& z, RunO&& run, FillO&& fill) {
  long run_lo = kEmptyLo;
  long run_hi = kEmptyLo - 1;
  auto flush = [&] {
    if (run_lo <= run_hi) run(run_lo, run_hi);
    run_lo = kEmptyLo;
    run_hi = kEmptyLo - 1;
  };
  for (long o = z.cand_lo; o <= z.cand_hi;) {
    if (o >= z.core_lo && o <= z.core_hi) {
      flush();
      o = z.core_hi + 1;
      continue;
    }
    const bool in_hole = o >= z.hole_lo && o <= z.hole_hi;
    if (!in_hole && o >= z.fill_lo && o <= z.fill_hi) {
      flush();
      long end = z.fill_hi;
      if (o < z.hole_lo) end = std::min(end, z.hole_lo - 1);
      fill(o, end);
      o = end + 1;
      continue;
    }
    if (run_hi + 1 == o) {
      run_hi = o;
    } else {
      flush();
      run_lo = run_hi = o;
    }
    ++o;
  }
  flush();
}

/// Map an inclusive offset run to at most two ascending half-open column
/// ranges [begin, end) — two when the run crosses the antimeridian.
template <typename SpanF>
inline void for_col_spans(long c_round, long o_lo, long o_hi, long ncols,
                          SpanF&& fn) {
  long c0 = (c_round + o_lo) % ncols;
  if (c0 < 0) c0 += ncols;
  const long len = o_hi - o_lo + 1;
  if (c0 + len <= ncols) {
    fn(c0, c0 + len);
  } else {
    fn(c0, ncols);
    fn(long{0}, c0 + len - ncols);
  }
}

}  // namespace ageo::grid::detail
