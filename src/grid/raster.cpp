#include "grid/raster.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <tuple>

#include "common/error.hpp"
#include "geo/units.hpp"
#include "geo/vec3.hpp"
#include "grid/annulus_scan.hpp"
#include "grid/simd.hpp"

namespace ageo::grid {

namespace {

using detail::AnnulusScan;

/// Visit every cell whose center is within [inner_km, outer_km] of
/// `center`, one dot product per cell of the latitude band. This is the
/// specification the pruned scan below is tested against bit for bit.
template <typename F>
void scan_annulus_naive(const Grid& g, const geo::LatLon& center,
                        double inner_km, double outer_km, F&& f) {
  const AnnulusScan s(g, center, inner_km, outer_km);
  if (s.empty) return;
  for (std::size_t r = s.r0; r < s.r1; ++r) {
    const std::size_t base = g.index(r, 0);
    for (std::size_t c = 0; c < g.cols(); ++c) {
      // The clamp keeps cells coincident with the center: their dot can
      // round to just above 1, which would fail `d <= cos_inner` when
      // inner_km is 0 and cos_inner is exactly 1.
      double d = std::clamp(s.v.dot(g.center_vec(base + c)), -1.0, 1.0);
      if (d >= s.cos_outer && d <= s.cos_inner) f(base + c);
    }
  }
}

/// Pruned scan: per row, the annulus intersects a longitude window that is
/// computed analytically from d(c) = P + Q*cos(dlon_c) with
/// P = sin(lat0)sin(lat_c) and Q = cos(lat0)cos(lat_c) >= 0. Guaranteed
/// cells are emitted as spans via `fs(begin, end)` (word fills downstream);
/// boundary-band cells are emitted as contiguous half-open index runs via
/// `fr(begin, end, s)` — each run cell still needs the exact per-cell test
/// (the SIMD kernels evaluate it four lanes at a time). The cells visited
/// are the same as the per-cell scan_annulus below, which is bit-for-bit
/// identical to scan_annulus_naive; see annulus_scan.hpp for the error
/// budget.
template <typename RunF, typename SpanF>
void scan_annulus_runs(const Grid& g, const geo::LatLon& center,
                       double inner_km, double outer_km, RunF&& fr,
                       SpanF&& fs) {
  const AnnulusScan s(g, center, inner_km, outer_km);
  if (s.empty) return;
  const long ncols = static_cast<long>(g.cols());
  const double cell = g.cell_deg();
  const double inv_cell = 1.0 / cell;
  const double lat0 = geo::deg_to_rad(center.lat_deg);
  const double sin0 = std::sin(lat0), cos0 = std::cos(lat0);
  // Real-valued column coordinate of the center longitude.
  const double t0 = (geo::wrap_longitude(center.lon_deg) + 180.0) * inv_cell - 0.5;
  const long c_round = static_cast<long>(std::llround(t0));
  const double frac = t0 - static_cast<double>(c_round);
  // inner_km == 0 makes cos_inner exactly 1, which every clamped dot
  // satisfies: the inner constraint is vacuous and rows get no hole.
  const bool inner_vacuous = s.inner_clamped == 0.0;

  // Angular half-width, in columns, of cos(dlon) >= u.
  const auto cols_of = [&](double u) {
    return geo::rad_to_deg(std::acos(std::clamp(u, -1.0, 1.0))) * inv_cell;
  };

  for (std::size_t r = s.r0; r < s.r1; ++r) {
    const std::size_t base = g.index(r, 0);
    const double latc = geo::deg_to_rad(g.row_lat_south(r) + cell / 2.0);
    const double P = sin0 * std::sin(latc);
    const double Q = cos0 * std::cos(latc);
    if (Q < detail::kMinQ) {  // ill-conditioned window: test the whole row
      fr(base, base + g.cols(), s);
      continue;
    }
    // Pass requires cos(dlon) in [u_out, u_in]; widen by the margin for
    // the candidate band, narrow for the guaranteed band.
    const double u_out_wide = (s.cos_outer - detail::kDotMargin - P) / Q;
    if (u_out_wide > 1.0) continue;  // row beyond the outer radius
    const double u_in_wide = (s.cos_inner + detail::kDotMargin - P) / Q;
    if (!inner_vacuous && u_in_wide < -1.0) continue;  // row inside the hole
    const double u_out_safe = (s.cos_outer + detail::kDotMargin - P) / Q;
    const double u_in_safe = (s.cos_inner - detail::kDotMargin - P) / Q;

    detail::RadialBounds b;
    b.cand = cols_of(u_out_wide) + 1.0;
    b.fill = u_out_safe > 1.0 ? -1.0 : cols_of(u_out_safe) - 1.0;
    if (!inner_vacuous && u_in_safe < 1.0) {
      b.hole = cols_of(u_in_safe) + 1.0;
      b.core = u_in_wide >= 1.0 ? -1.0 : cols_of(u_in_wide) - 1.0;
    }
    detail::emit_zone_runs(
        detail::zones_from_radii(frac, b, ncols),
        [&](long o_lo, long o_hi) {
          detail::for_col_spans(c_round, o_lo, o_hi, ncols,
                                [&](long b0, long b1) {
                                  fr(base + static_cast<std::size_t>(b0),
                                     base + static_cast<std::size_t>(b1), s);
                                });
        },
        [&](long o_lo, long o_hi) {
          detail::for_col_spans(c_round, o_lo, o_hi, ncols,
                                [&](long b0, long b1) {
                                  fs(base + static_cast<std::size_t>(b0),
                                     base + static_cast<std::size_t>(b1));
                                });
        });
  }
}

/// Per-cell flavor of the pruned scan, expressed over the run scan so the
/// two cannot drift: each boundary-run cell gets the exact clamped-dot
/// test and `f(idx)` on pass.
template <typename CellF, typename SpanF>
void scan_annulus(const Grid& g, const geo::LatLon& center, double inner_km,
                  double outer_km, CellF&& f, SpanF&& fs) {
  scan_annulus_runs(
      g, center, inner_km, outer_km,
      [&](std::size_t b, std::size_t e, const AnnulusScan& s) {
        for (std::size_t idx = b; idx < e; ++idx) {
          double d = std::clamp(s.v.dot(g.center_vec(idx)), -1.0, 1.0);
          if (d >= s.cos_outer && d <= s.cos_inner) f(idx);
        }
      },
      static_cast<SpanF&&>(fs));
}

}  // namespace

Region rasterize_cap(const Grid& g, const geo::Cap& cap) {
  Region out(g);
  rasterize_cap_into(g, cap, out);
  return out;
}

Region rasterize_ring(const Grid& g, const geo::Ring& ring) {
  Region out(g);
  rasterize_ring_into(g, ring, out);
  return out;
}

void rasterize_cap_into(const Grid& g, const geo::Cap& cap, Region& out) {
  ageo::detail::require(geo::is_valid(cap.center), "rasterize_cap: invalid center");
  ageo::detail::require(out.grid() == &g,
                        "rasterize_cap_into: region on a different grid");
  const simd::KernelTable& kt = simd::kernels();
  const geo::Vec3* centers = &g.center_vec(0);
  std::uint64_t* words = out.words().data();
  scan_annulus_runs(
      g, cap.center, 0.0, cap.radius_km,
      [&](std::size_t b, std::size_t e, const AnnulusScan& s) {
        kt.annulus_set(centers, b, e, s.v, s.cos_outer, s.cos_inner, words);
      },
      [&](std::size_t b, std::size_t e) { out.set_span(b, e); });
}

void rasterize_ring_into(const Grid& g, const geo::Ring& ring, Region& out) {
  ageo::detail::require(geo::is_valid(ring.center),
                  "rasterize_ring: invalid center");
  ageo::detail::require(out.grid() == &g,
                        "rasterize_ring_into: region on a different grid");
  const simd::KernelTable& kt = simd::kernels();
  const geo::Vec3* centers = &g.center_vec(0);
  std::uint64_t* words = out.words().data();
  scan_annulus_runs(
      g, ring.center, ring.inner_km, ring.outer_km,
      [&](std::size_t b, std::size_t e, const AnnulusScan& s) {
        kt.annulus_set(centers, b, e, s.v, s.cos_outer, s.cos_inner, words);
      },
      [&](std::size_t b, std::size_t e) { out.set_span(b, e); });
}

std::pair<std::size_t, std::size_t> annulus_row_band(const Grid& g,
                                                     const geo::LatLon& center,
                                                     double inner_km,
                                                     double outer_km) {
  const AnnulusScan s(g, center, inner_km, outer_km);
  if (s.empty) return {0, 0};
  return {s.r0, s.r1};
}

namespace reference {

Region rasterize_cap(const Grid& g, const geo::Cap& cap) {
  ageo::detail::require(geo::is_valid(cap.center), "rasterize_cap: invalid center");
  Region out(g);
  scan_annulus_naive(g, cap.center, 0.0, cap.radius_km,
                     [&](std::size_t idx) { out.set(idx); });
  return out;
}

Region rasterize_ring(const Grid& g, const geo::Ring& ring) {
  ageo::detail::require(geo::is_valid(ring.center),
                  "rasterize_ring: invalid center");
  Region out(g);
  scan_annulus_naive(g, ring.center, ring.inner_km, ring.outer_km,
                     [&](std::size_t idx) { out.set(idx); });
  return out;
}

}  // namespace reference

Region rasterize_polygon(const Grid& g, const geo::Polygon& poly) {
  Region out(g);
  if (poly.empty()) return out;
  auto [r0, r1] = g.rows_in_lat_band(poly.min_lat() - g.cell_deg(),
                                     poly.max_lat() + g.cell_deg());
  for (std::size_t r = r0; r < r1; ++r) {
    const std::size_t base = g.index(r, 0);
    for (std::size_t c = 0; c < g.cols(); ++c) {
      if (poly.contains(g.center(base + c))) out.set(base + c);
    }
  }
  return out;
}

Region rasterize_lat_band(const Grid& g, double lat_lo, double lat_hi) {
  Region out(g);
  auto [r0, r1] = g.rows_in_lat_band(lat_lo, lat_hi);
  for (std::size_t r = r0; r < r1; ++r) {
    const std::size_t base = g.index(r, 0);
    for (std::size_t c = 0; c < g.cols(); ++c) {
      geo::LatLon p = g.center(base + c);
      if (p.lat_deg >= lat_lo && p.lat_deg <= lat_hi) out.set(base + c);
    }
  }
  return out;
}

void accumulate_cap_mask(const Grid& g, const geo::Cap& cap,
                         std::vector<std::uint64_t>& masks, unsigned bit) {
  ageo::detail::require(masks.size() == g.size(),
                  "accumulate_cap_mask: mask size mismatch");
  accumulate_cap_mask(g, cap, masks.data(), bit);
}

void accumulate_ring_mask(const Grid& g, const geo::Ring& ring,
                          std::vector<std::uint64_t>& masks, unsigned bit) {
  ageo::detail::require(masks.size() == g.size(),
                  "accumulate_ring_mask: mask size mismatch");
  accumulate_ring_mask(g, ring, masks.data(), bit);
}

void accumulate_cap_mask(const Grid& g, const geo::Cap& cap,
                         std::uint64_t* masks, unsigned bit) {
  ageo::detail::require(bit < 64, "accumulate_cap_mask: bit must be < 64");
  const std::uint64_t m = 1ULL << bit;
  scan_annulus(
      g, cap.center, 0.0, cap.radius_km,
      [&](std::size_t idx) { masks[idx] |= m; },
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) masks[i] |= m;
      });
}

void accumulate_ring_mask(const Grid& g, const geo::Ring& ring,
                          std::uint64_t* masks, unsigned bit) {
  ageo::detail::require(bit < 64, "accumulate_ring_mask: bit must be < 64");
  const std::uint64_t m = 1ULL << bit;
  scan_annulus(
      g, ring.center, ring.inner_km, ring.outer_km,
      [&](std::size_t idx) { masks[idx] |= m; },
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) masks[i] |= m;
      });
}

}  // namespace ageo::grid
