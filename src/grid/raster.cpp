#include "grid/raster.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "geo/units.hpp"
#include "geo/vec3.hpp"

namespace ageo::grid {

namespace {

/// Visit every cell whose center is within [inner_km, outer_km] of
/// `center`, pruned to the latitude band the annulus can touch.
template <typename F>
void scan_annulus(const Grid& g, const geo::LatLon& center, double inner_km,
                  double outer_km, F&& f) {
  if (outer_km < 0 || outer_km < inner_km) return;
  const double outer_capped =
      std::min(outer_km, geo::kEarthRadiusKm * std::numbers::pi);
  const double dlat = geo::rad_to_deg(outer_capped / geo::kEarthRadiusKm);
  // Half a cell of slack so cell centers right at the band edge are kept.
  auto [r0, r1] = g.rows_in_lat_band(center.lat_deg - dlat - g.cell_deg(),
                                     center.lat_deg + dlat + g.cell_deg());
  const geo::Vec3 v = geo::to_vec3(center);
  // Convert distance bounds to dot-product bounds: d <= r  <=>
  // angle <= r/R  <=>  dot >= cos(r/R), for r/R in [0, pi].
  const double cos_outer = std::cos(outer_capped / geo::kEarthRadiusKm);
  const double inner_clamped =
      std::clamp(inner_km, 0.0, geo::kEarthRadiusKm * std::numbers::pi);
  const double cos_inner = std::cos(inner_clamped / geo::kEarthRadiusKm);
  for (std::size_t r = r0; r < r1; ++r) {
    const std::size_t base = g.index(r, 0);
    for (std::size_t c = 0; c < g.cols(); ++c) {
      double d = v.dot(g.center_vec(base + c));
      if (d >= cos_outer && d <= cos_inner) f(base + c);
    }
  }
}

}  // namespace

Region rasterize_cap(const Grid& g, const geo::Cap& cap) {
  detail::require(geo::is_valid(cap.center), "rasterize_cap: invalid center");
  Region out(g);
  scan_annulus(g, cap.center, 0.0, cap.radius_km,
               [&](std::size_t idx) { out.set(idx); });
  return out;
}

Region rasterize_ring(const Grid& g, const geo::Ring& ring) {
  detail::require(geo::is_valid(ring.center),
                  "rasterize_ring: invalid center");
  Region out(g);
  scan_annulus(g, ring.center, ring.inner_km, ring.outer_km,
               [&](std::size_t idx) { out.set(idx); });
  return out;
}

Region rasterize_polygon(const Grid& g, const geo::Polygon& poly) {
  Region out(g);
  if (poly.empty()) return out;
  auto [r0, r1] = g.rows_in_lat_band(poly.min_lat() - g.cell_deg(),
                                     poly.max_lat() + g.cell_deg());
  for (std::size_t r = r0; r < r1; ++r) {
    const std::size_t base = g.index(r, 0);
    for (std::size_t c = 0; c < g.cols(); ++c) {
      if (poly.contains(g.center(base + c))) out.set(base + c);
    }
  }
  return out;
}

Region rasterize_lat_band(const Grid& g, double lat_lo, double lat_hi) {
  Region out(g);
  auto [r0, r1] = g.rows_in_lat_band(lat_lo, lat_hi);
  for (std::size_t r = r0; r < r1; ++r) {
    const std::size_t base = g.index(r, 0);
    for (std::size_t c = 0; c < g.cols(); ++c) {
      geo::LatLon p = g.center(base + c);
      if (p.lat_deg >= lat_lo && p.lat_deg <= lat_hi) out.set(base + c);
    }
  }
  return out;
}

void accumulate_cap_mask(const Grid& g, const geo::Cap& cap,
                         std::vector<std::uint64_t>& masks, unsigned bit) {
  detail::require(masks.size() == g.size(),
                  "accumulate_cap_mask: mask size mismatch");
  detail::require(bit < 64, "accumulate_cap_mask: bit must be < 64");
  const std::uint64_t m = 1ULL << bit;
  scan_annulus(g, cap.center, 0.0, cap.radius_km,
               [&](std::size_t idx) { masks[idx] |= m; });
}

void accumulate_ring_mask(const Grid& g, const geo::Ring& ring,
                          std::vector<std::uint64_t>& masks, unsigned bit) {
  detail::require(masks.size() == g.size(),
                  "accumulate_ring_mask: mask size mismatch");
  detail::require(bit < 64, "accumulate_ring_mask: bit must be < 64");
  const std::uint64_t m = 1ULL << bit;
  scan_annulus(g, ring.center, ring.inner_km, ring.outer_km,
               [&](std::size_t idx) { masks[idx] |= m; });
}

}  // namespace ageo::grid
