// Shared scalar cores for the SIMD kernel tables (simd.cpp and
// simd_avx2.cpp both include this). The AVX2 lanes perform the same
// floating-point operations in the same order as these cores, so the
// two tables agree bit-for-bit; keeping the cores in one header means
// the scalar table and the AVX2 head/tail loops cannot drift apart.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "geo/vec3.hpp"

namespace ageo::grid::simd::detail {

// ---- annulus pass test ------------------------------------------------

/// The exact per-cell membership test used by every annulus rasterize /
/// intersect path: clamp the dot product of unit vectors (guards the
/// acos domain at the callers that derive cos bounds) and compare
/// against the closed [cos_outer, cos_inner] band.
inline bool annulus_pass(const geo::Vec3& c, const geo::Vec3& v,
                         double cos_outer, double cos_inner) noexcept {
  double d = v.dot(c);
  if (d > 1.0) d = 1.0;
  if (d < -1.0) d = -1.0;
  return d >= cos_outer && d <= cos_inner;
}

/// Pass bits (at positions idx & 63) for cells [lo, hi) within one
/// 64-cell word.
inline std::uint64_t annulus_pass_bits(const geo::Vec3* centers,
                                       std::size_t lo, std::size_t hi,
                                       const geo::Vec3& v, double cos_outer,
                                       double cos_inner) noexcept {
  std::uint64_t pass = 0;
  for (std::size_t idx = lo; idx < hi; ++idx) {
    pass |= static_cast<std::uint64_t>(
                annulus_pass(centers[idx], v, cos_outer, cos_inner))
            << (idx & 63);
  }
  return pass;
}

/// Bit mask for positions [lo, hi) of a 64-bit word (lo < hi <= 64).
inline std::uint64_t word_run_mask(unsigned lo, unsigned hi) noexcept {
  const std::uint64_t upper = (hi == 64) ? ~0ull : ((1ull << hi) - 1ull);
  return upper & ~((1ull << lo) - 1ull);
}

enum class AnnulusOp { kSet, kIntersect, kSubtract };

/// Fold one word's pass bits into the region word. `rm` masks the
/// positions actually covered by the run; bits outside it are never
/// touched (pass bits are zero outside [lo, hi) by construction, so
/// only intersect needs the mask explicitly).
template <AnnulusOp Op>
inline void fold_word(std::uint64_t& w, std::uint64_t pass,
                      std::uint64_t rm) noexcept {
  if constexpr (Op == AnnulusOp::kSet) {
    w |= pass;
  } else if constexpr (Op == AnnulusOp::kIntersect) {
    w &= pass | ~rm;
  } else {
    w &= ~pass;
  }
}

// ---- fast exponential -------------------------------------------------

/// exp(-a) underflows to +0.0 at a >= 746 (matches field.cpp's
/// kGaussianCut — the hard-support cutoff the ring fast paths rely on).
inline constexpr double kExpZeroCut = 746.0;
/// exp(-a) overflows to +inf below a <= -710 (exp(709.79) is the last
/// finite double).
inline constexpr double kExpInfCut = -710.0;

inline constexpr double kLog2E = 1.4426950408889634074;
// Cody–Waite split of ln2 (fdlibm): ln2_hi has enough trailing zero
// mantissa bits that n * ln2_hi is exact for |n| <= 2^20.
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;

/// 2^k by exponent-field construction, for k in [-1022, 1023].
inline double pow2i(int k) noexcept {
  return std::bit_cast<double>(static_cast<std::uint64_t>(k + 1023) << 52);
}

/// exp(-a) via round-to-nearest base-2 argument reduction and a
/// degree-13 Taylor Horner chain (|r| <= ln2/2 + eps keeps the
/// truncation under ~0.05 ulp; end-to-end error vs std::exp is pinned
/// in ULPs by simd_test). Edge semantics match the field fast path
/// exactly: a >= 746 -> +0.0, a <= -710 -> +inf, NaN -> NaN (input
/// propagated), +/-0.0 -> 1.0.
///
/// The two-step 2^n scaling (n split as n1 = n >> 1, n2 = n - n1)
/// keeps both scale factors representable and makes the final multiply
/// the only rounding step, so results entering the subnormal range
/// (a in (708, 746)) round correctly instead of double-rounding.
inline double exp_neg_core(double a) noexcept {
  if (std::isnan(a)) return a;
  if (a >= kExpZeroCut) return 0.0;
  if (a <= kExpInfCut) return std::numeric_limits<double>::infinity();
  const double x = -a;
  const double nd = std::nearbyint(x * kLog2E);
  const int n = static_cast<int>(nd);
  const double r = (x - nd * kLn2Hi) - nd * kLn2Lo;
  double p = 1.0 / 6227020800.0;   // 1/13!
  p = p * r + 1.0 / 479001600.0;   // 1/12!
  p = p * r + 1.0 / 39916800.0;    // 1/11!
  p = p * r + 1.0 / 3628800.0;     // 1/10!
  p = p * r + 1.0 / 362880.0;      // 1/9!
  p = p * r + 1.0 / 40320.0;       // 1/8!
  p = p * r + 1.0 / 5040.0;        // 1/7!
  p = p * r + 1.0 / 720.0;         // 1/6!
  p = p * r + 1.0 / 120.0;         // 1/5!
  p = p * r + 1.0 / 24.0;          // 1/4!
  p = p * r + 1.0 / 6.0;           // 1/3!
  p = p * r + 0.5;                 // 1/2!
  p = p * r + 1.0;
  p = p * r + 1.0;
  const int n1 = n >> 1;
  return (p * pow2i(n1)) * pow2i(n - n1);
}

/// The ring weight argument, in the field fast path's exact operation
/// order: r = dist - mu, a = (r * r) * inv_2s2.
inline double ring_arg(double dist, double mu_km, double inv_2s2) noexcept {
  const double r = dist - mu_km;
  return (r * r) * inv_2s2;
}

}  // namespace ageo::grid::simd::detail
