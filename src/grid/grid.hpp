// Global analysis grid.
//
// Prediction regions, land masks, and probability fields are all rasters
// over one shared latitude/longitude grid. Cells are equal-angle (fixed
// degrees per side) with exact spherical areas (area of a lat band slice),
// so summing cell areas gives correct region areas even near the poles.
//
// The grid is immutable after construction and precomputes cell centers as
// unit vectors, making the inner loop of disk rasterization a dot product.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "geo/geodesy.hpp"
#include "geo/latlon.hpp"
#include "geo/vec3.hpp"

namespace ageo::grid {

/// Immutable global raster. Rows run south to north, columns west to east
/// starting at longitude -180. Regions (see region.hpp) keep a pointer to
/// their grid; the grid must outlive them.
class Grid {
 public:
  /// `cell_deg` is the angular size of a cell side in degrees; it must be
  /// positive and no larger than 30. 180 and 360 need not be exact
  /// multiples — the last row/column simply crops at the poles/antimeridian
  /// boundary (we require exact multiples to keep areas exact; throws
  /// InvalidArgument otherwise).
  explicit Grid(double cell_deg);

  double cell_deg() const noexcept { return cell_deg_; }
  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }

  std::size_t index(std::size_t row, std::size_t col) const noexcept {
    return row * cols_ + col;
  }
  std::size_t row_of(std::size_t idx) const noexcept { return idx / cols_; }
  std::size_t col_of(std::size_t idx) const noexcept { return idx % cols_; }

  /// Center of a cell.
  geo::LatLon center(std::size_t idx) const noexcept;
  /// Precomputed unit vector of the cell center.
  const geo::Vec3& center_vec(std::size_t idx) const noexcept {
    return centers_[idx];
  }
  /// Exact spherical area of a cell, km^2 (constant within a row).
  double cell_area_km2(std::size_t idx) const noexcept {
    return row_area_km2_[row_of(idx)];
  }

  /// Cell containing a point. Latitude 90 maps into the top row.
  std::size_t cell_at(const geo::LatLon& p) const noexcept;

  /// Southern and northern latitude bounds of a row, degrees.
  double row_lat_south(std::size_t row) const noexcept {
    return -90.0 + static_cast<double>(row) * cell_deg_;
  }
  double row_lat_north(std::size_t row) const noexcept {
    return row_lat_south(row) + cell_deg_;
  }

  /// Rows whose latitude band intersects [lat_lo, lat_hi]; used to prune
  /// disk rasterization to the cap's latitude band. Returns [first, last)
  /// row indices, clamped to the grid.
  std::pair<std::size_t, std::size_t> rows_in_lat_band(
      double lat_lo, double lat_hi) const noexcept;

  /// Great-circle distance from a point to a cell center, km.
  double distance_to_cell_km(const geo::LatLon& p,
                             std::size_t idx) const noexcept;

 private:
  double cell_deg_;
  std::size_t rows_, cols_;
  std::vector<geo::Vec3> centers_;
  std::vector<double> row_area_km2_;
};

}  // namespace ageo::grid
