// Thread-local scratch arenas for grid-sized temporaries.
//
// The steady-state audit loop needs the same handful of large buffers
// for every proxy: a Region or two for running intersections, the LCS
// coverage planes (8 bytes per cell per 64 constraints), a Field for
// Spotter posteriors, and a few index vectors. Allocating and
// zero-filling them per locate() call is the dominant structural waste
// left after PR 2/3 (8.3 MB of coverage vector per call at 0.25°).
//
// A Scratch pools those buffers per worker thread. Callers take RAII
// leases; destruction returns the buffer — with its capacity — to the
// arena, so after a short warmup the audit loop performs zero heap
// allocations for grid buffers (asserted by the obs counters below, and
// by a steady-state guard test in audit_parallel_test).
//
// Ownership and clearing rules (DESIGN.md §9):
//  * Arenas are strictly thread-affine: Scratch::tls() returns the
//    calling thread's arena and leases must not cross threads.
//  * The ARENA clears: a lease is handed out in a known state (zeroed
//    Region / zeroed words / uniform Field / empty index vector), so
//    tenants never see a previous tenant's bits.
//  * Word leases support dirty-range tracking: a tenant that promises
//    all its writes fall inside marked ranges (mark_dirty) makes the
//    next acquire's clear cost O(touched rows) instead of O(grid) — the
//    LCS coverage planes touch only each disk's latitude band, a few
//    percent of the grid in the common case.
//  * When a thread exits, its arena donates its buffers to a bounded
//    process-wide store; new arenas (e.g. next run's workers) adopt
//    from it before allocating, so even short-lived audit workers reach
//    steady state after the first run.
//
// Pool misses and buffer growth are counted under wall-clock-tagged
// `grid.alloc.*` counters (they depend on thread count and pool
// history); lease acquisitions are deterministic per workload and
// counted under `mlat.scratch.*`. Every lease factory accepts a null
// arena and then degrades to a plain per-call allocation — the oracle
// configuration equivalence tests compare against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "grid/field.hpp"
#include "grid/region.hpp"

namespace ageo::grid {

struct ScratchStore;

class Scratch {
 public:
  Scratch() = default;
  ~Scratch();
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  /// The calling thread's arena (created on first use, donated to the
  /// shared store at thread exit).
  static Scratch& tls();

  /// Pooled word buffer (LCS coverage planes, mask collections) with
  /// dirty-range tracking.
  class WordsLease {
   public:
    std::vector<std::uint64_t>& vec() noexcept { return buf_; }
    /// Promise that every write of this tenancy falls inside some marked
    /// [begin, end) element range; the next acquire then clears only the
    /// marked ranges. Never calling mark_dirty means "anything may be
    /// dirty" and forces a full clear next time.
    void mark_dirty(std::size_t begin, std::size_t end);

    WordsLease(WordsLease&&) noexcept;
    WordsLease& operator=(WordsLease&&) = delete;
    WordsLease(const WordsLease&) = delete;
    ~WordsLease();

   private:
    friend class Scratch;
    WordsLease() = default;
    Scratch* owner_ = nullptr;
    std::vector<std::uint64_t> buf_;
    std::vector<std::pair<std::size_t, std::size_t>> dirty_;
    bool tracked_ = false;
    std::size_t bytes_at_acquire_ = 0;
  };

  /// Pooled Region, handed out empty (all zero) on `g`.
  class RegionLease {
   public:
    Region& ref() noexcept { return region_; }

    RegionLease(RegionLease&&) noexcept;
    RegionLease& operator=(RegionLease&&) = delete;
    RegionLease(const RegionLease&) = delete;
    ~RegionLease();

   private:
    friend class Scratch;
    RegionLease() = default;
    Scratch* owner_ = nullptr;
    Region region_;
    std::size_t bytes_at_acquire_ = 0;
  };

  /// Pooled Field, handed out uniform (all ones) on `g`.
  class FieldLease {
   public:
    Field& ref() noexcept { return field_; }

    FieldLease(FieldLease&&) noexcept;
    FieldLease& operator=(FieldLease&&) = delete;
    FieldLease(const FieldLease&) = delete;
    ~FieldLease();

   private:
    friend class Scratch;
    FieldLease() = default;
    Scratch* owner_ = nullptr;
    Field field_;
    std::size_t bytes_at_acquire_ = 0;
  };

  /// Pooled uint32 vector, handed out empty with warm capacity (band
  /// lists, sort permutations, credible-region orderings).
  class IndexLease {
   public:
    std::vector<std::uint32_t>& vec() noexcept { return buf_; }
    const std::vector<std::uint32_t>& vec() const noexcept { return buf_; }

    IndexLease(IndexLease&&) noexcept;
    IndexLease& operator=(IndexLease&&) = delete;
    IndexLease(const IndexLease&) = delete;
    ~IndexLease();

   private:
    friend class Scratch;
    IndexLease() = default;
    Scratch* owner_ = nullptr;
    std::vector<std::uint32_t> buf_;
    std::size_t bytes_at_acquire_ = 0;
  };

  /// Pooled double vector, handed out empty with warm capacity (the
  /// windowed SubField posteriors of the refinement driver, sized to the
  /// window instead of the globe).
  class DoublesLease {
   public:
    std::vector<double>& vec() noexcept { return buf_; }
    const std::vector<double>& vec() const noexcept { return buf_; }

    DoublesLease(DoublesLease&&) noexcept;
    DoublesLease& operator=(DoublesLease&&) = delete;
    DoublesLease(const DoublesLease&) = delete;
    ~DoublesLease();

   private:
    friend class Scratch;
    DoublesLease() = default;
    Scratch* owner_ = nullptr;
    std::vector<double> buf_;
    std::size_t bytes_at_acquire_ = 0;
  };

  /// `n` zeroed words. A null arena yields a plain owned buffer.
  static WordsLease words(Scratch* arena, std::size_t n);
  /// Empty word buffer with warm capacity (append-mode tenants).
  static WordsLease word_buf(Scratch* arena);
  /// Empty region on `g`.
  static RegionLease region(Scratch* arena, const Grid& g);
  /// Uniform all-ones field on `g`.
  static FieldLease field(Scratch* arena, const Grid& g);
  /// Empty index vector.
  static IndexLease indices(Scratch* arena);
  /// Empty double vector.
  static DoublesLease doubles(Scratch* arena);

  /// Process-wide allocation statistics, aggregated over every arena
  /// (live or retired) and the shared store.
  struct Stats {
    std::uint64_t buffers_allocated = 0;  ///< pool misses + growths
    std::uint64_t bytes_allocated = 0;    ///< cumulative
    std::uint64_t bytes_retained = 0;     ///< held by arenas + store now
    std::uint64_t high_water_bytes = 0;   ///< max of bytes_retained
  };
  static Stats aggregate() noexcept;

 private:
  friend struct ScratchStore;

  struct WordBuf {
    std::vector<std::uint64_t> buf;
    std::vector<std::pair<std::size_t, std::size_t>> dirty;
    bool dirty_all = true;
  };

  WordBuf take_word_buf(std::size_t min_size);
  void give_word_buf(WordsLease& lease);
  Region take_region();
  void give_region(RegionLease& lease);
  Field take_field();
  void give_field(FieldLease& lease);
  std::vector<std::uint32_t> take_indices();
  void give_indices(IndexLease& lease);
  std::vector<double> take_doubles();
  void give_doubles(DoublesLease& lease);

  std::vector<WordBuf> words_;
  std::vector<Region> regions_;
  std::vector<Field> fields_;
  std::vector<std::vector<std::uint32_t>> indices_;
  std::vector<std::vector<double>> dbls_;
};

}  // namespace ageo::grid
