// Prediction regions: sets of grid cells.
//
// A Region is a bitset over the cells of one Grid. All the geometry the
// geolocation algorithms need — intersection, area, centroid, distance
// from a point to the region — is linear in the number of cells (words).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/latlon.hpp"
#include "grid/grid.hpp"

namespace ageo::grid {

/// A set of cells of a Grid. The Grid must outlive every Region built on
/// it. Binary operations require both operands to share the same Grid.
class Region {
 public:
  Region() = default;
  /// Empty region on `g`.
  explicit Region(const Grid& g);

  const Grid* grid() const noexcept { return grid_; }
  bool attached() const noexcept { return grid_ != nullptr; }

  bool test(std::size_t idx) const noexcept {
    return (words_[idx >> 6] >> (idx & 63)) & 1;
  }
  void set(std::size_t idx) noexcept { words_[idx >> 6] |= 1ULL << (idx & 63); }
  /// Set every cell in [begin, end) with whole-word fills; the workhorse
  /// of the pruned rasterizer (raster.cpp).
  void set_span(std::size_t begin, std::size_t end) noexcept {
    if (begin >= end) return;
    std::size_t w0 = begin >> 6, w1 = (end - 1) >> 6;
    std::uint64_t first = ~0ULL << (begin & 63);
    std::uint64_t last = ~0ULL >> (63 - ((end - 1) & 63));
    if (w0 == w1) {
      words_[w0] |= first & last;
      return;
    }
    words_[w0] |= first;
    for (std::size_t w = w0 + 1; w < w1; ++w) words_[w] = ~0ULL;
    words_[w1] |= last;
  }
  void reset(std::size_t idx) noexcept {
    words_[idx >> 6] &= ~(1ULL << (idx & 63));
  }
  /// Clear every cell in [begin, end) with whole-word stores; the
  /// workhorse of the fused intersect kernels (cap_cache.cpp).
  void clear_span(std::size_t begin, std::size_t end) noexcept {
    if (begin >= end) return;
    std::size_t w0 = begin >> 6, w1 = (end - 1) >> 6;
    std::uint64_t first = ~0ULL << (begin & 63);
    std::uint64_t last = ~0ULL >> (63 - ((end - 1) & 63));
    if (w0 == w1) {
      words_[w0] &= ~(first & last);
      return;
    }
    words_[w0] &= ~first;
    for (std::size_t w = w0 + 1; w < w1; ++w) words_[w] = 0;
    words_[w1] &= ~last;
  }
  /// this &= other, restricted to the words covering cells [begin, end).
  /// Bits outside the range are left untouched, so callers whose set
  /// bits all lie inside the range (the windowed refinement scans) get
  /// the exact global AND at a fraction of the word traffic.
  void intersect_with_in(const Region& other, std::size_t begin,
                         std::size_t end) noexcept {
    if (begin >= end) return;
    const std::size_t w1 = (end - 1) >> 6;
    for (std::size_t w = begin >> 6; w <= w1; ++w)
      words_[w] &= other.words_[w];
  }
  /// Number of set cells in [begin, end).
  std::size_t count_in(std::size_t begin, std::size_t end) const noexcept {
    if (begin >= end) return 0;
    std::size_t w0 = begin >> 6, w1 = (end - 1) >> 6;
    std::uint64_t first = ~0ULL << (begin & 63);
    std::uint64_t last = ~0ULL >> (63 - ((end - 1) & 63));
    if (w0 == w1)
      return static_cast<std::size_t>(
          __builtin_popcountll(words_[w0] & first & last));
    std::size_t n = static_cast<std::size_t>(
        __builtin_popcountll(words_[w0] & first));
    for (std::size_t w = w0 + 1; w < w1; ++w)
      n += static_cast<std::size_t>(__builtin_popcountll(words_[w]));
    return n + static_cast<std::size_t>(
                   __builtin_popcountll(words_[w1] & last));
  }
  /// True if any cell in [begin, end) is set.
  bool any_in(std::size_t begin, std::size_t end) const noexcept {
    if (begin >= end) return false;
    std::size_t w0 = begin >> 6, w1 = (end - 1) >> 6;
    std::uint64_t first = ~0ULL << (begin & 63);
    std::uint64_t last = ~0ULL >> (63 - ((end - 1) & 63));
    if (w0 == w1) return (words_[w0] & first & last) != 0;
    if (words_[w0] & first) return true;
    for (std::size_t w = w0 + 1; w < w1; ++w)
      if (words_[w]) return true;
    return (words_[w1] & last) != 0;
  }
  /// Visit every set cell in [begin, end), ascending.
  template <typename F>
  void for_each_set_in(std::size_t begin, std::size_t end, F&& f) const {
    if (begin >= end) return;
    std::size_t w0 = begin >> 6, w1 = (end - 1) >> 6;
    std::uint64_t first = ~0ULL << (begin & 63);
    std::uint64_t last = ~0ULL >> (63 - ((end - 1) & 63));
    for (std::size_t w = w0; w <= w1; ++w) {
      std::uint64_t bits = words_[w];
      if (w == w0) bits &= first;
      if (w == w1) bits &= last;
      while (bits) {
        unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
        f((w << 6) + b);
        bits &= bits - 1;
      }
    }
  }

  /// True if the point's cell is in the region.
  bool contains(const geo::LatLon& p) const noexcept;

  std::size_t count() const noexcept;
  bool empty() const noexcept;

  /// Fill / clear every cell.
  void fill() noexcept;
  void clear() noexcept;

  /// Re-attach to `g` as an empty region, reusing the existing word
  /// buffer's capacity. Arena support (grid/scratch.hpp): equivalent to
  /// `*this = Region(g)` minus the allocation. The previous grid pointer
  /// is never dereferenced, so a pooled Region may outlive the grid it
  /// was last used on.
  void rebind(const Grid& g);

  Region& operator&=(const Region& o);
  Region& operator|=(const Region& o);
  /// Remove o's cells from this region.
  Region& subtract(const Region& o);

  friend Region operator&(Region a, const Region& b) { return a &= b; }
  friend Region operator|(Region a, const Region& b) { return a |= b; }

  bool operator==(const Region& o) const noexcept;

  /// True if the two regions share at least one cell.
  bool intersects(const Region& o) const;
  /// True if every cell of this region is also in `o`.
  bool subset_of(const Region& o) const;

  /// Total spherical area, km^2.
  double area_km2() const noexcept;

  /// Area-weighted centroid (3-D mean of cell centers, renormalised).
  /// Empty regions have no centroid.
  std::optional<geo::LatLon> centroid() const noexcept;

  /// Distance from `p` to the nearest cell center of the region, km;
  /// 0 if the region contains p's cell. Empty regions yield +infinity.
  /// This is the paper's "distance from edge to true location" metric
  /// (Fig. 9A), up to half a cell of quantisation.
  double distance_from_km(const geo::LatLon& p) const noexcept;

  /// Indices of all set cells, ascending.
  std::vector<std::size_t> cells() const;

  /// Visit all set cells without materialising the list.
  template <typename F>
  void for_each_cell(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits) {
        unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
        f(w * 64 + b);
        bits &= bits - 1;
      }
    }
  }

  std::vector<std::uint64_t>& words() noexcept { return words_; }
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

 private:
  const Grid* grid_ = nullptr;
  std::vector<std::uint64_t> words_;

  void check_compatible(const Region& o) const;
  void trim_tail() noexcept;
};

}  // namespace ageo::grid
