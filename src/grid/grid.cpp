#include "grid/grid.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "geo/units.hpp"

namespace ageo::grid {

Grid::Grid(double cell_deg) : cell_deg_(cell_deg) {
  detail::require(cell_deg > 0.0 && cell_deg <= 30.0,
                  "Grid: cell size must be in (0, 30] degrees");
  double rows_f = 180.0 / cell_deg;
  double cols_f = 360.0 / cell_deg;
  detail::require(std::abs(rows_f - std::round(rows_f)) < 1e-9 &&
                      std::abs(cols_f - std::round(cols_f)) < 1e-9,
                  "Grid: cell size must divide 180 and 360 exactly");
  rows_ = static_cast<std::size_t>(std::llround(rows_f));
  cols_ = static_cast<std::size_t>(std::llround(cols_f));

  centers_.resize(size());
  row_area_km2_.resize(rows_);
  const double R2 = geo::kEarthRadiusKm * geo::kEarthRadiusKm;
  const double dlon_rad = geo::deg_to_rad(cell_deg_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = geo::deg_to_rad(row_lat_south(r));
    double n = geo::deg_to_rad(row_lat_north(r));
    row_area_km2_[r] = R2 * dlon_rad * (std::sin(n) - std::sin(s));
    double lat_c = row_lat_south(r) + cell_deg_ / 2.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      double lon_c = -180.0 + (static_cast<double>(c) + 0.5) * cell_deg_;
      centers_[index(r, c)] = geo::to_vec3({lat_c, lon_c});
    }
  }
}

geo::LatLon Grid::center(std::size_t idx) const noexcept {
  std::size_t r = row_of(idx), c = col_of(idx);
  return {row_lat_south(r) + cell_deg_ / 2.0,
          -180.0 + (static_cast<double>(c) + 0.5) * cell_deg_};
}

std::size_t Grid::cell_at(const geo::LatLon& p) const noexcept {
  double lat = std::clamp(p.lat_deg, -90.0, 90.0);
  double lon = geo::wrap_longitude(p.lon_deg);
  auto r = static_cast<std::size_t>(
      std::min(static_cast<double>(rows_ - 1),
               std::floor((lat + 90.0) / cell_deg_)));
  auto c = static_cast<std::size_t>(
      std::min(static_cast<double>(cols_ - 1),
               std::floor((lon + 180.0) / cell_deg_)));
  return index(r, c);
}

std::pair<std::size_t, std::size_t> Grid::rows_in_lat_band(
    double lat_lo, double lat_hi) const noexcept {
  lat_lo = std::clamp(lat_lo, -90.0, 90.0);
  lat_hi = std::clamp(lat_hi, -90.0, 90.0);
  if (lat_hi < lat_lo) return {0, 0};
  auto first = static_cast<std::size_t>(
      std::max(0.0, std::floor((lat_lo + 90.0) / cell_deg_)));
  auto last = static_cast<std::size_t>(
      std::min(static_cast<double>(rows_),
               std::ceil((lat_hi + 90.0) / cell_deg_)));
  first = std::min(first, rows_);
  return {first, std::max(first, last)};
}

double Grid::distance_to_cell_km(const geo::LatLon& p,
                                 std::size_t idx) const noexcept {
  geo::Vec3 v = geo::to_vec3(p);
  const geo::Vec3& u = centers_[idx];
  return geo::kEarthRadiusKm * std::atan2(v.cross(u).norm(), v.dot(u));
}

}  // namespace ageo::grid
