// VPN fleet audit: the paper's headline experiment (§6) end to end.
//
// Generates seven VPN providers with claimed and true server locations,
// measures every proxy through its tunnel from a client in Frankfurt,
// locates each with CBG++, and classifies every country claim as
// credible / uncertain / false — with data-center and AS metadata
// disambiguation. Since the simulator knows the ground truth, the
// example also scores the pipeline against it.
#include <cstdio>
#include <cstdlib>
#include <string>

#include <iostream>

#include "assess/audit.hpp"
#include "assess/confusion.hpp"
#include "assess/report.hpp"
#include "measure/testbed.hpp"
#include "world/fleet.hpp"

using namespace ageo;

int main(int argc, char** argv) {
  // Scale knob so the example runs in seconds by default; pass a larger
  // factor for the full 2269-server study (bench_headline_audit does).
  double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  if (!(scale > 0.0 && scale <= 4.0)) {
    std::fprintf(stderr, "usage: %s [scale in (0,4]]\n", argv[0]);
    return 1;
  }

  measure::TestbedConfig tb;
  tb.seed = 2018;
  tb.constellation.n_anchors = 200;
  tb.constellation.n_probes = 500;
  measure::Testbed bed(tb);

  auto specs = world::default_provider_specs();
  for (auto& s : specs)
    s.target_servers = static_cast<int>(s.target_servers * scale);
  auto fleet = world::generate_fleet(bed.world(), specs, tb.seed);
  std::printf("fleet: %zu proxies across %zu providers\n",
              fleet.hosts.size(), specs.size());

  assess::AuditConfig ac;
  ac.grid_cell_deg = 1.0;
  assess::Auditor auditor(bed, ac);
  auto report = auditor.run(fleet);

  std::printf("eta estimate: %.3f (R^2 %.3f, from %zu pingable proxies)\n",
              report.eta.eta, report.eta.r_squared, report.eta.n_proxies);

  auto b = assess::breakdown(report.rows, /*use_disambiguated=*/true);
  std::printf("\nassessment (with disambiguation), %zu proxies:\n",
              b.total());
  std::printf("  credible                              %5zu\n", b.credible);
  std::printf("  country uncertain, continent credible %5zu\n",
              b.country_uncertain_continent_credible);
  std::printf("  country and continent uncertain       %5zu\n",
              b.country_and_continent_uncertain);
  std::printf("  country false, continent credible     %5zu\n",
              b.country_false_continent_credible);
  std::printf("  country false, continent uncertain    %5zu\n",
              b.country_false_continent_uncertain);
  std::printf("  continent false                       %5zu\n",
              b.continent_false);

  std::printf("\nper-provider honesty (strict%% / generous%%):\n");
  for (const auto& h : assess::honesty_by_provider(report.rows, true)) {
    std::printf("  %s: %5.1f%% / %5.1f%%  (n=%zu)\n", h.provider.c_str(),
                100.0 * h.strict(), 100.0 * h.generous(), h.n);
  }

  // Score against ground truth: a "false" verdict should never hit an
  // honestly-placed server.
  std::size_t honest_total = 0, honest_called_false = 0;
  std::size_t dishonest_total = 0, dishonest_called_false = 0;
  for (const auto& r : report.rows) {
    bool honest = r.true_country == r.claimed;
    if (honest) {
      ++honest_total;
      if (r.verdict_final == assess::Verdict::kFalse) ++honest_called_false;
    } else {
      ++dishonest_total;
      if (r.verdict_final == assess::Verdict::kFalse)
        ++dishonest_called_false;
    }
  }
  std::size_t honest_raw_false = 0, honest_region_miss = 0;
  for (const auto& r : report.rows) {
    if (r.true_country != r.claimed) continue;
    if (r.verdict_raw == assess::Verdict::kFalse) ++honest_raw_false;
    const auto& h = fleet.hosts[r.host_index];
    if (!r.region.contains(h.true_location)) ++honest_region_miss;
  }
  std::printf("\nground truth scoring:\n");
  std::printf("  honest servers wrongly called false:   %zu / %zu "
              "(raw: %zu, region missed truth: %zu)\n",
              honest_called_false, honest_total, honest_raw_false,
              honest_region_miss);
  std::printf("  dishonest servers correctly disproved: %zu / %zu\n",
              dishonest_called_false, dishonest_total);

  std::printf("\nmachine-readable export (assess::write_json writes the "
              "same data as JSON):\n");
  assess::write_text_summary(std::cout, report, bed.world());

  auto cm = assess::continent_confusion(bed.world(), report.rows);
  std::printf("\ncontinent confusion (diagonal = coverage):\n        ");
  for (std::size_t c = 0; c < world::kContinentCount; ++c)
    std::printf("%7.7s", std::string(world::kContinentNames[c]).c_str());
  std::printf("\n");
  for (std::size_t a = 0; a < world::kContinentCount; ++a) {
    std::printf("%7.7s ", std::string(world::kContinentNames[a]).c_str());
    for (std::size_t b2 = 0; b2 < world::kContinentCount; ++b2)
      std::printf("%7zu", cm.at(a, b2));
    std::printf("\n");
  }
  return 0;
}
