// Catch a liar: investigate one suspicious VPN server end to end.
//
// A provider advertises a server in North Korea. The server is really in
// a Frankfurt data center. This walks through the paper's §4-§6 pipeline
// for a single target: tunnel setup, eta correction, two-phase
// measurement, CBG++ multilateration, the ICLab cross-check, claim
// classification, and co-location detection against a second "server"
// that is allegedly in Japan.
#include <cstdio>

#include "algos/cbg_pp.hpp"
#include "algos/iclab.hpp"
#include "assess/claim.hpp"
#include "assess/colocation.hpp"
#include "assess/investigate.hpp"
#include "grid/ascii_map.hpp"
#include "measure/proxy_measure.hpp"
#include "measure/testbed.hpp"
#include "measure/two_phase.hpp"

using namespace ageo;

int main() {
  measure::TestbedConfig cfg;
  cfg.seed = 404;
  cfg.constellation.n_anchors = 200;
  cfg.constellation.n_probes = 400;
  measure::Testbed bed(cfg);
  const auto& w = bed.world();
  auto kp = w.find_country("kp").value();
  auto jp = w.find_country("jp").value();

  std::printf("== catching a lying proxy ==\n\n");
  std::printf("advertised: \"server in %s\"\n", w.country(kp).name.c_str());
  std::printf("reality (hidden from the pipeline): Frankfurt, Germany\n\n");

  // The measurement client (Frankfurt too — the worst case for us, since
  // the tunnel leg is tiny) and the lying proxies.
  netsim::HostProfile client_profile;
  client_profile.location = {48.2, 16.37};  // Vienna client
  netsim::HostId client = bed.add_host(client_profile);
  geo::LatLon truth{50.12, 8.66};
  netsim::HostProfile proxy_profile;
  proxy_profile.location = truth;
  proxy_profile.icmp_responds = false;  // ignores pings, like 90% of them
  netsim::HostId proxy = bed.add_host(proxy_profile);
  netsim::HostId proxy2 = bed.add_host(proxy_profile);  // "in Japan"

  netsim::ProxySession session(bed.net(), client, proxy, {});
  std::printf("direct ping: %s\n",
              session.direct_ping_ms() ? "answered" : "filtered (as usual)");

  // Tunnel RTT estimate from self-pings.
  measure::ProxyProber prober(bed, session, 0.5);
  std::printf("tunnel RTT estimate (eta * min self-ping): %.1f ms\n",
              prober.tunnel_rtt_ms());

  // Two-phase measurement through the tunnel.
  Rng rng(7, "investigation");
  auto probe = prober.as_probe_fn();
  auto tp = measure::two_phase_measure(bed, probe, rng);
  std::printf("phase 1 says the server is in: %s\n",
              std::string(world::to_string(tp.continent)).c_str());
  std::printf("phase 2 measured %zu landmarks there\n\n",
              tp.observations.size());

  // CBG++ prediction.
  grid::Grid g(1.0);
  grid::Region mask = w.plausibility_mask(g);
  algos::CbgPlusPlusGeolocator locator;
  auto est = locator.locate(g, bed.store(), tp.observations, &mask);
  auto raster = w.country_raster(g);
  auto assessment = assess::assess_claim(w, raster, est.region, kp);
  std::printf("CBG++ region: %.0f km^2, covering:", est.area_km2());
  for (auto c : assessment.covered_countries)
    std::printf(" %s", w.country(c).name.c_str());
  std::printf("\nclaim \"%s\": %s (continent: %s)\n",
              w.country(kp).name.c_str(),
              assess::to_string(assessment.country),
              assess::to_string(assessment.continent));

  // ICLab cross-check.
  algos::IclabChecker iclab;
  grid::Region kp_region = w.country_region(g, kp);
  std::printf("ICLab speed-limit check: %s (%zu measurements violate "
              "153 km/ms toward %s)\n\n",
              iclab.accepts(kp_region, tp.observations) ? "accepted"
                                                        : "REJECTED",
              iclab.violations(kp_region, tp.observations),
              w.country(kp).name.c_str());

  // Co-location: the "North Korea" and "Japan" servers answer each other
  // in under 5 ms.
  std::vector<netsim::HostId> proxies{proxy, proxy2};
  auto groups = assess::colocation_groups(bed.net(), proxies);
  std::printf("co-location check: \"%s\" server and \"%s\" server %s\n",
              w.country(kp).name.c_str(), w.country(jp).name.c_str(),
              groups[0] == groups[1]
                  ? "are on the SAME local network (RTT < 5 ms)"
                  : "appear to be in different facilities");

  std::printf("\nverdict: the advertised location is %s.\n",
              assessment.country == assess::Verdict::kFalse
                  ? "definitively false"
                  : "not disproven");

  // Where the server really is, drawn on the map: '.' = land, '#' =
  // prediction region, 'K' = the claimed location (Pyongyang).
  grid::AsciiMap viz(120);
  viz.add_layer(mask, '.');
  viz.add_layer(est.region, '#');
  viz.add_marker(w.country(kp).capital, 'K');
  viz.crop_latitude(30.0, 62.0);
  std::printf("\n%s\n", viz.to_string().c_str());

  // The same investigation as a single library call.
  netsim::ProxySession session2(bed.net(), client, proxy, {});
  auto inv = assess::investigate_proxy(bed, session2, kp);
  std::printf("one-call API agrees: verdict %s, ICLab %s, region %.0f "
              "km^2 on %s\n",
              assess::to_string(inv.verdict),
              inv.iclab_accepted ? "accepted" : "rejected", inv.area_km2,
              std::string(world::to_string(inv.continent)).c_str());
  return assessment.country == assess::Verdict::kFalse ? 0 : 1;
}
