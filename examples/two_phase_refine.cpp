// Two-phase measurement and iterative refinement (§4.1 + §8.1).
//
// Shows the measurement budget story: a handful of continental probes
// pick the continent, 25 random landmarks produce a region, and the
// iterative-refinement extension (the paper's future work) keeps adding
// the nearest unused landmarks until the region stops shrinking.
#include <cstdio>

#include "algos/cbg_pp.hpp"
#include "measure/refine.hpp"
#include "measure/testbed.hpp"
#include "measure/tools.hpp"
#include "measure/two_phase.hpp"
#include "world/placement.hpp"

using namespace ageo;

int main() {
  measure::TestbedConfig cfg;
  cfg.seed = 314;
  cfg.constellation.n_anchors = 220;
  cfg.constellation.n_probes = 500;
  measure::Testbed bed(cfg);

  Rng rng(3, "refine-demo");
  auto se = bed.world().find_country("se").value();
  geo::LatLon truth = world::random_point_in_country(bed.world(), se, rng);
  std::printf("== two-phase measurement + refinement ==\n");
  std::printf("target: %s (%s)\n\n", geo::to_string(truth).c_str(),
              bed.world().country(se).name.c_str());

  netsim::HostProfile p;
  p.location = truth;
  p.net_quality = 0.75;
  netsim::HostId target = bed.add_host(p);
  std::size_t probes_used = 0;
  measure::ProbeFn probe = [&](std::size_t lm) {
    ++probes_used;
    return measure::CliTool::measure_ms(bed.net(), target,
                                        bed.landmark_host(lm));
  };

  auto tp = measure::two_phase_measure(bed, probe, rng);
  std::printf("phase 1: continent = %s (from %zu continental anchors)\n",
              std::string(world::to_string(tp.continent)).c_str(),
              tp.phase1.size());
  std::printf("phase 2: %zu landmarks measured, %zu probes so far\n",
              tp.observations.size(), probes_used);

  grid::Grid g(1.0);
  grid::Region mask = bed.world().plausibility_mask(g);
  algos::CbgPlusPlusGeolocator locator;
  auto initial = locator.locate(g, bed.store(), tp.observations, &mask);
  std::printf("\ninitial region: %.0f km^2, covers truth: %s\n",
              initial.area_km2(),
              initial.region.contains(truth) ? "yes" : "no");

  measure::RefineConfig rc;
  rc.batch_size = 8;
  rc.max_rounds = 5;
  auto refined =
      measure::refine_region(bed, g, locator, probe, tp, &mask, rc);
  std::printf("after %d refinement rounds (%zu observations, %zu probes "
              "total):\n",
              refined.rounds_used, refined.observations.size(),
              probes_used);
  std::printf("refined region: %.0f km^2 (%.0f%% of initial), covers "
              "truth: %s\n",
              refined.estimate.area_km2(),
              100.0 * refined.estimate.area_km2() /
                  std::max(1.0, initial.area_km2()),
              refined.estimate.region.contains(truth) ? "yes" : "no");
  return 0;
}
