// ageo_audit_cli: the full audit as a command-line tool.
//
//   ageo_audit_cli [--scale F] [--seed N] [--grid DEG] [--grid-deg DEG]
//                  [--refine SCHED] [--threads N] [--algo NAME]
//                  [--json FILE] [--ground-truth] [--metrics FILE|-]
//                  [--trace FILE] [--journal FILE] [--explain N]
//                  [--attackers FRAC] [--attack STRATEGY]
//
// Runs the seven-provider audit and prints the per-provider summary;
// optionally writes the complete per-proxy results as JSON, the
// telemetry snapshot as Prometheus text (--metrics), a Chrome
// trace_event profile of the run (--trace), the verdict provenance
// journal as JSONL (--journal), and a per-proxy decision narrative
// rendered from that journal (--explain, repeatable).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "assess/audit.hpp"
#include "assess/explain.hpp"
#include "assess/report.hpp"
#include "measure/testbed.hpp"
#include "netsim/adversary.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "world/fleet.hpp"

using namespace ageo;

namespace {
void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scale F] [--seed N] [--grid DEG] "
               "[--grid-deg DEG] [--threads N] [--algo NAME]\n"
               "       [--json FILE] [--ground-truth] [--metrics FILE|-] "
               "[--trace FILE]\n"
               "  --scale F         fleet/constellation scale factor "
               "(default 0.25; 1.0 = paper scale)\n"
               "  --seed N          master seed (default 2018)\n"
               "  --grid DEG        analysis grid cell size (default 1.0; "
               "must divide 180 evenly)\n"
               "  --grid-deg DEG    like --grid, restricted to the "
               "calibrated resolutions: 0.25, 0.5, 1.0, 2.0\n"
               "  --refine SCHED    coarse-to-fine refinement schedule: "
               "comma-separated cell sizes\n"
               "                    coarser than the grid (e.g. 2.0,0.5), "
               "'auto', or 'off' (default off);\n"
               "                    results are bit-identical to flat "
               "solves\n"
               "  --threads N       audit worker threads (default 1; 0 = "
               "one per hardware thread)\n"
               "  --algo NAME       geolocator: cbgpp | spotter | hybrid "
               "(default cbgpp)\n"
               "  --json FILE       write per-proxy results as JSON "
               "(includes the telemetry snapshot)\n"
               "  --ground-truth    include simulator ground truth in the "
               "JSON\n"
               "  --metrics FILE|-  write the metrics snapshot as "
               "Prometheus text (- = stdout)\n"
               "  --trace FILE      write a Chrome trace_event profile "
               "(open in chrome://tracing); FILE.jsonl gets the flat log\n"
               "  --journal FILE    write the verdict provenance journal "
               "as JSONL (one event per line)\n"
               "  --explain N       print proxy N's decision narrative, "
               "rendered from the journal alone\n"
               "                    (repeatable; implies journaling for "
               "the run)\n"
               "  --attackers FRAC  compromise this fraction of landmarks "
               "(default 0 = honest fleet)\n"
               "  --attack NAME     adversary strategy: inflate | deflate "
               "| collude | drop (default collude)\n",
               argv0);
}

// Strict numeric parsing. std::atof maps garbage to 0.0 silently, which
// used to turn a typo like "--grid-deg 0,5" into an opaque usage dump
// (or worse, an uncaught Grid exception later); require the whole token
// to parse and name the offending flag.
double parse_double(const char* flag, const char* text) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || !std::isfinite(v)) {
    std::fprintf(stderr, "%s: '%s' is not a number\n", flag, text);
    std::exit(2);
  }
  return v;
}

long long parse_int(const char* flag, const char* text) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "%s: '%s' is not an integer\n", flag, text);
    std::exit(2);
  }
  return v;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}
}  // namespace

int main(int argc, char** argv) {
  double scale = 0.25;
  std::uint64_t seed = 2018;
  double grid_deg = 1.0;
  std::string refine_spec = "off";
  int threads = 1;
  std::string algo = "cbgpp";
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;
  std::string journal_path;
  std::vector<std::uint64_t> explain_ids;
  bool ground_truth = false;
  double attackers = 0.0;
  std::string attack = "collude";

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--scale")) {
      scale = parse_double("--scale", need_value("--scale"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = static_cast<std::uint64_t>(
          parse_int("--seed", need_value("--seed")));
    } else if (!std::strcmp(argv[i], "--grid")) {
      grid_deg = parse_double("--grid", need_value("--grid"));
    } else if (!std::strcmp(argv[i], "--grid-deg")) {
      const char* text = need_value("--grid-deg");
      grid_deg = parse_double("--grid-deg", text);
      if (grid_deg != 0.25 && grid_deg != 0.5 && grid_deg != 1.0 &&
          grid_deg != 2.0) {
        std::fprintf(stderr,
                     "--grid-deg: '%s' is not a calibrated resolution; "
                     "expected one of 0.25, 0.5, 1.0, 2.0 "
                     "(use --grid for arbitrary cell sizes)\n",
                     text);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--refine")) {
      refine_spec = need_value("--refine");
    } else if (!std::strcmp(argv[i], "--threads")) {
      threads =
          static_cast<int>(parse_int("--threads", need_value("--threads")));
    } else if (!std::strcmp(argv[i], "--algo")) {
      algo = need_value("--algo");
    } else if (!std::strcmp(argv[i], "--json")) {
      json_path = need_value("--json");
    } else if (!std::strcmp(argv[i], "--metrics")) {
      metrics_path = need_value("--metrics");
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_path = need_value("--trace");
    } else if (!std::strcmp(argv[i], "--journal")) {
      journal_path = need_value("--journal");
    } else if (!std::strcmp(argv[i], "--explain")) {
      const long long id = parse_int("--explain", need_value("--explain"));
      if (id < 0) {
        std::fprintf(stderr, "--explain: proxy index must be >= 0\n");
        return 2;
      }
      explain_ids.push_back(static_cast<std::uint64_t>(id));
    } else if (!std::strcmp(argv[i], "--attackers")) {
      attackers = parse_double("--attackers", need_value("--attackers"));
    } else if (!std::strcmp(argv[i], "--attack")) {
      attack = need_value("--attack");
    } else if (!std::strcmp(argv[i], "--ground-truth")) {
      ground_truth = true;
    } else if (!std::strcmp(argv[i], "--help") ||
               !std::strcmp(argv[i], "-h")) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(argv[0]);
      return 2;
    }
  }
  if (!(scale > 0.0 && scale <= 4.0)) {
    std::fprintf(stderr, "--scale must be in (0, 4], got %g\n", scale);
    return 2;
  }
  if (!(grid_deg > 0.0 && grid_deg <= 30.0) ||
      std::llround(180.0 / grid_deg) * grid_deg != 180.0 ||
      std::llround(360.0 / grid_deg) * grid_deg != 360.0) {
    std::fprintf(stderr,
                 "--grid: %g does not evenly divide the 180x360 degree "
                 "globe (try 0.25, 0.5, 1.0, or 2.0)\n",
                 grid_deg);
    return 2;
  }
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0, got %d\n", threads);
    return 2;
  }
  if (!(attackers >= 0.0 && attackers <= 1.0)) {
    std::fprintf(stderr, "--attackers must be in [0, 1], got %g\n",
                 attackers);
    return 2;
  }
  mlat::RefineSchedule refine;
  try {
    refine = refine_spec == "auto"
                 ? mlat::RefineSchedule::recommended(grid_deg)
                 : mlat::RefineSchedule::parse(refine_spec);
    // Surface schedule/grid mismatches (e.g. a level finer than the
    // grid) here with the flag named, not as an exception from deep
    // inside Auditor construction.
    if (refine.enabled()) mlat::RefineContext probe{grid::Grid(grid_deg), refine};
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--refine: invalid schedule '%s': %s\n",
                 refine_spec.c_str(), e.what());
    return 2;
  }
  if (!netsim::profile_for_strategy(attack, geo::LatLon{0.0, 0.0})) {
    std::fprintf(stderr, "unknown --attack: %s\n", attack.c_str());
    usage(argv[0]);
    return 2;
  }

  // Telemetry is on whenever any consumer asked for it (the JSON report
  // embeds the snapshot too). Metric updates never perturb results.
  if (!metrics_path.empty() || !json_path.empty())
    obs::set_metrics_enabled(true);
  if (!trace_path.empty()) obs::set_tracing_enabled(true);
  if (!journal_path.empty() || !explain_ids.empty())
    obs::set_journal_enabled(true);

  assess::AuditConfig ac;
  if (algo == "cbgpp") {
    ac.algorithm = assess::AuditAlgorithm::kCbgPlusPlus;
  } else if (algo == "spotter") {
    ac.algorithm = assess::AuditAlgorithm::kSpotter;
  } else if (algo == "hybrid") {
    ac.algorithm = assess::AuditAlgorithm::kHybrid;
  } else {
    std::fprintf(stderr, "unknown --algo: %s\n", algo.c_str());
    usage(argv[0]);
    return 2;
  }

  measure::TestbedConfig tb;
  tb.seed = seed;
  tb.constellation.n_anchors =
      std::max(40, static_cast<int>(250 * std::min(1.0, scale * 2.0)));
  tb.constellation.n_probes = std::max(80, static_cast<int>(800 * scale));
  std::fprintf(stderr, "building testbed (%d anchors, %d probes)...\n",
               tb.constellation.n_anchors, tb.constellation.n_probes);
  measure::Testbed bed(tb);

  auto specs = world::default_provider_specs();
  for (auto& s : specs)
    s.target_servers = std::max(10, static_cast<int>(s.target_servers * scale));
  auto fleet = world::generate_fleet(bed.world(), specs, seed);

  std::vector<netsim::HostId> compromised;
  if (attackers > 0.0) {
    std::vector<netsim::HostId> landmark_hosts;
    landmark_hosts.reserve(bed.landmarks().size());
    for (std::size_t i = 0; i < bed.landmarks().size(); ++i)
      landmark_hosts.push_back(bed.landmark_host(i));
    // Colluders rendezvous on a fixed fake position; the other
    // strategies ignore it.
    const geo::LatLon fake{40.0, -100.0};
    compromised = netsim::attach_adversaries(bed.net(), landmark_hosts,
                                             attackers, attack, seed, fake);
    std::fprintf(stderr, "compromised %zu/%zu landmarks (%s)\n",
                 compromised.size(), landmark_hosts.size(), attack.c_str());
  }
  std::fprintf(stderr, "auditing %zu proxies...\n", fleet.hosts.size());

  ac.grid_cell_deg = grid_deg;
  ac.refine = refine;
  if (refine.enabled())
    std::fprintf(stderr, "refinement schedule: %s -> %g\n",
                 refine.to_string().c_str(), grid_deg);
  ac.seed = seed + 1;
  ac.threads = threads;
  assess::Auditor auditor(bed, ac);
  auto report = auditor.run(fleet);

  assess::write_text_summary(std::cout, report, bed.world());
  std::printf("eta: %.3f [%.3f, %.3f] (R^2 %.3f, %zu pingable)\n",
              report.eta.eta, report.eta.eta_ci_low,
              report.eta.eta_ci_high, report.eta.r_squared,
              report.eta.n_proxies);

  // Byzantine section: who the subset engine distrusts. Printed whenever
  // something is flagged, or always under an explicit attack so the
  // operator sees a (possibly empty) verdict either way.
  std::size_t byz_rows = 0;
  for (const auto& r : report.rows)
    if (r.byzantine) ++byz_rows;
  if (byz_rows || !report.suspicious_landmarks.empty() || attackers > 0.0) {
    std::printf("byzantine: %zu flagged proxy rows, %zu suspicious "
                "landmarks\n",
                byz_rows, report.suspicious_landmarks.size());
    for (std::size_t id : report.suspicious_landmarks) {
      const auto& e = report.suspicion.entry(id);
      const bool truly = std::find(compromised.begin(), compromised.end(),
                                   bed.landmark_host(id)) !=
                         compromised.end();
      std::printf("  landmark %3zu: excluded %llu/%llu solves "
                  "(score %.2f)%s\n",
                  id, static_cast<unsigned long long>(e.excluded),
                  static_cast<unsigned long long>(e.solves), e.score(),
                  attackers > 0.0 ? (truly ? "  [attacker]" : "  [honest!]")
                                  : "");
    }
  }

  if (!report.telemetry.empty()) {
    // Scratch-arena report: how much the pooled hot-path buffers cost
    // (allocations should be a handful regardless of proxy count) and
    // how hard they were exercised.
    const auto counter = [&](const char* name) -> std::uint64_t {
      for (const auto& c : report.telemetry.counters)
        if (c.name == name) return c.value;
      return 0;
    };
    const auto gauge = [&](const char* name) -> double {
      for (const auto& g : report.telemetry.gauges)
        if (g.name == name) return g.value;
      return 0.0;
    };
    std::printf("scratch arenas:\n");
    std::printf("  heap bytes: %.0f allocated, %.0f high water, "
                "%.0f retained\n",
                gauge("mlat.scratch.bytes_allocated"),
                gauge("mlat.scratch.high_water_bytes"),
                gauge("mlat.scratch.retained_bytes"));
    std::printf("  buffer allocations: %llu region, %llu cover, "
                "%llu field, %llu index\n",
                static_cast<unsigned long long>(
                    counter("grid.alloc.region_buffers")),
                static_cast<unsigned long long>(
                    counter("grid.alloc.cover_buffers")),
                static_cast<unsigned long long>(
                    counter("grid.alloc.field_buffers")),
                static_cast<unsigned long long>(
                    counter("grid.alloc.index_buffers")));
    std::printf("  lease acquires: %llu region, %llu words, "
                "%llu field, %llu index\n",
                static_cast<unsigned long long>(
                    counter("mlat.scratch.region_acquires")),
                static_cast<unsigned long long>(
                    counter("mlat.scratch.words_acquires")),
                static_cast<unsigned long long>(
                    counter("mlat.scratch.field_acquires")),
                static_cast<unsigned long long>(
                    counter("mlat.scratch.index_acquires")));
    std::printf("subset engine: %llu solves, %llu constraints, "
                "%llu fast-path, %llu excluded\n",
                static_cast<unsigned long long>(counter("mlat.lcs.solves")),
                static_cast<unsigned long long>(
                    counter("mlat.lcs.constraints")),
                static_cast<unsigned long long>(
                    counter("mlat.lcs.fast_path_hits")),
                static_cast<unsigned long long>(
                    counter("mlat.lcs.excluded")));
    if (counter("netsim.adversary.hosts_compromised")) {
      std::printf("adversary: %llu hosts, %llu probes shifted, "
                  "%llu forged, %llu dropped\n",
                  static_cast<unsigned long long>(
                      counter("netsim.adversary.hosts_compromised")),
                  static_cast<unsigned long long>(
                      counter("netsim.adversary.probes_shifted")),
                  static_cast<unsigned long long>(
                      counter("netsim.adversary.probes_forged")),
                  static_cast<unsigned long long>(
                      counter("netsim.adversary.probes_dropped")));
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    assess::ReportOptions opt;
    opt.include_ground_truth = ground_truth;
    assess::write_json(out, report, bed.world(), opt);
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }

  if (!metrics_path.empty()) {
    const std::string text = report.telemetry.to_prometheus();
    if (metrics_path == "-") {
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else if (write_text_file(metrics_path, text)) {
      std::fprintf(stderr, "wrote %s\n", metrics_path.c_str());
    } else {
      return 1;
    }
  }

  if (!journal_path.empty() || !explain_ids.empty()) {
    const obs::JournalDump jdump = obs::collect_journal();
    if (!journal_path.empty()) {
      if (!write_text_file(journal_path, obs::journal_to_jsonl(jdump)))
        return 1;
      std::fprintf(stderr, "wrote %s (%zu events, %llu dropped)\n",
                   journal_path.c_str(), jdump.events.size(),
                   static_cast<unsigned long long>(jdump.dropped));
    }
    for (std::uint64_t id : explain_ids) {
      const std::string text = assess::explain_proxy(jdump, id);
      std::fwrite(text.data(), 1, text.size(), stdout);
    }
  }

  if (!trace_path.empty()) {
    const obs::TraceDump dump = obs::collect_trace();
    if (!write_text_file(trace_path, obs::trace_to_chrome_json(dump)) ||
        !write_text_file(trace_path + ".jsonl", obs::trace_to_jsonl(dump)))
      return 1;
    std::fprintf(stderr, "wrote %s (+.jsonl, %zu events, %llu dropped)\n",
                 trace_path.c_str(), dump.events.size(),
                 static_cast<unsigned long long>(dump.dropped));
  }
  return 0;
}
