// Resilient campaign: measuring through a hostile substrate.
//
// The paper's infrastructure was never fully healthy — landmarks filtered
// probes or timed out (§4.2) and anchors were decommissioned mid-
// experiment (§4.1). This example injects both failure modes into the
// simulator (flapping landmarks, a proxy tunnel that drops mid-campaign)
// and runs the same two-phase measurement twice: once with the bare
// probe, once under the campaign engine. The bare run silently loses
// observations; the engine retries, breaks circuits, replaces dead
// landmarks, reconnects the tunnel, and reports everything it did in
// CampaignStats.
#include <cstdio>

#include "algos/cbg_pp.hpp"
#include "measure/campaign.hpp"
#include "measure/proxy_measure.hpp"
#include "measure/testbed.hpp"
#include "measure/two_phase.hpp"

using namespace ageo;

int main() {
  std::printf("== resilient campaign ==\n");

  measure::TestbedConfig cfg;
  cfg.seed = 2018;
  cfg.constellation.n_anchors = 120;
  cfg.constellation.n_probes = 240;
  measure::Testbed bed(cfg);

  // 30% of the landmarks flap: down for whole 6-round blocks with
  // probability 0.5, on a schedule reproducible from the network seed.
  Rng flaprng(42);
  std::size_t flapping = 0;
  for (std::size_t i = 0; i < bed.landmarks().size(); ++i) {
    if (!flaprng.chance(0.3)) continue;
    bed.net().set_flap(bed.landmark_host(i), 0.5, 6);
    ++flapping;
  }
  std::printf("%zu of %zu landmarks flapping\n", flapping,
              bed.landmarks().size());

  // A client in Frankfurt auditing a proxy in Zurich whose tunnel will
  // drop for 14 probe rounds in the middle of phase 2.
  netsim::HostProfile cp;
  cp.location = {50.11, 8.68};
  netsim::HostId client = bed.add_host(cp);
  netsim::HostProfile pp;
  pp.location = {47.37, 8.54};
  netsim::HostId proxy = bed.add_host(pp);
  bed.net().set_outage_window(proxy, 30, 44);
  netsim::ProxySession session(bed.net(), client, proxy, {});
  measure::ProxyProber prober(bed, session, 0.5);

  // Baseline: the bare probe, losing every failed measurement.
  {
    Rng rng(77);
    auto probe = prober.as_probe_fn();
    auto tp = measure::two_phase_measure(bed, probe, rng);
    std::printf("bare probe:      %zu of 25 observations (failures lost)\n",
                tp.observations.size());
  }

  // The campaign engine around the identical probe.
  Rng rng(77);
  measure::CampaignEngine engine(prober.as_rich_probe_fn());
  engine.set_round_hook([&bed] { bed.net().advance_round(); });
  engine.attach_tunnel(prober);
  auto tp = measure::two_phase_measure(bed, engine, rng);
  const auto& s = tp.stats;
  std::printf("campaign engine: %zu of 25 observations\n",
              tp.observations.size());
  std::printf("  probes sent %llu, measured %llu, timeouts %llu over %llu "
              "rounds\n",
              static_cast<unsigned long long>(s.probes_sent),
              static_cast<unsigned long long>(s.measured()),
              static_cast<unsigned long long>(s.timeouts),
              static_cast<unsigned long long>(s.rounds));
  std::printf("  retries %llu (exhausted %llu), breaker trips %llu / skips "
              "%llu, replacements %llu\n",
              static_cast<unsigned long long>(s.retries),
              static_cast<unsigned long long>(s.retry_exhausted),
              static_cast<unsigned long long>(s.breaker_trips),
              static_cast<unsigned long long>(s.breaker_skips),
              static_cast<unsigned long long>(s.replacements));
  std::printf("  tunnel: drops %llu, reconnects %llu, drift flags %llu%s\n",
              static_cast<unsigned long long>(s.tunnel_drops),
              static_cast<unsigned long long>(s.tunnel_reconnects),
              static_cast<unsigned long long>(s.tunnel_drift_flags),
              engine.tunnel_flagged() ? "  [row flagged]" : "");

  // The observations are still good input for the geolocator.
  grid::Grid g(1.0);
  grid::Region mask = bed.world().plausibility_mask(g);
  algos::CbgPlusPlusGeolocator locator;
  auto est = locator.locate(g, bed.store(), tp.observations, &mask);
  std::printf("prediction region: %.0f km^2, covers the proxy: %s\n",
              est.area_km2(),
              est.region.contains(pp.location) ? "YES" : "no");
  return 0;
}
