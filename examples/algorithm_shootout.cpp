// Algorithm shootout: all five estimators on the same measurements.
//
// Reproduces the paper's §3/§5 comparison interactively: one target,
// one set of observations, five predictions side by side — region area,
// whether the truth is covered, and the centroid error.
#include <cstdio>

#include "algos/geolocator.hpp"
#include "geo/geodesy.hpp"
#include "measure/testbed.hpp"
#include "measure/tools.hpp"
#include "measure/two_phase.hpp"
#include "world/placement.hpp"

using namespace ageo;

int main(int argc, char** argv) {
  const char* code = argc > 1 ? argv[1] : "ch";
  measure::TestbedConfig cfg;
  cfg.seed = 99;
  cfg.constellation.n_anchors = 200;
  cfg.constellation.n_probes = 400;
  measure::Testbed bed(cfg);
  auto country = bed.world().find_country(code);
  if (!country) {
    std::fprintf(stderr, "unknown country code '%s'\n", code);
    return 1;
  }

  Rng rng(13, "shootout");
  geo::LatLon truth =
      world::random_point_in_country(bed.world(), *country, rng);
  std::printf("== algorithm shootout ==\ntarget: %s in %s\n\n",
              geo::to_string(truth).c_str(),
              bed.world().country(*country).name.c_str());

  netsim::HostProfile p;
  p.location = truth;
  p.net_quality = 0.7;
  netsim::HostId target = bed.add_host(p);
  measure::ProbeFn probe = [&](std::size_t lm) {
    return measure::CliTool::measure_ms(bed.net(), target,
                                        bed.landmark_host(lm));
  };
  auto tp = measure::two_phase_measure(bed, probe, rng);
  std::printf("%zu observations on %s\n\n", tp.observations.size(),
              std::string(world::to_string(tp.continent)).c_str());

  grid::Grid g(1.0);
  grid::Region mask = bed.world().plausibility_mask(g);
  auto raster = bed.world().country_raster(g);

  std::printf("%-14s %14s %8s %14s  countries covered\n", "algorithm",
              "area km^2", "covers", "centroid km");
  for (const auto& locator : algos::make_all_geolocators()) {
    auto est = locator->locate(g, bed.store(), tp.observations, &mask);
    if (est.empty()) {
      std::printf("%-14s %14s %8s %14s  (empty — constraints "
                  "inconsistent)\n",
                  std::string(locator->name()).c_str(), "-", "-", "-");
      continue;
    }
    auto c = est.centroid();
    std::printf("%-14s %14.0f %8s %14.0f ",
                std::string(locator->name()).c_str(), est.area_km2(),
                est.region.contains(truth) ? "yes" : "NO",
                c ? geo::distance_km(*c, truth) : -1.0);
    auto covered = raster.countries_in(est.region);
    std::size_t shown = 0;
    for (auto cc : covered) {
      if (shown++ == 6) {
        std::printf(" ...(+%zu)", covered.size() - 6);
        break;
      }
      std::printf(" %s", bed.world().country(cc).code.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n(the paper's finding: simple models win at world scale — "
              "CBG-family regions are bigger but actually contain the "
              "target; pass a country code to try another target, e.g. "
              "%s jp)\n",
              argc > 0 ? argv[0] : "algorithm_shootout");
  return 0;
}
