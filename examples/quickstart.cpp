// Quickstart: locate one host with CBG++ on the synthetic Internet.
//
// Builds a testbed (world + network + landmark constellation +
// calibration), places a target in a known location, runs the two-phase
// measurement with the command-line tool, and prints the CBG++
// prediction region.
#include <cstdio>

#include "algos/cbg_pp.hpp"
#include "geo/geodesy.hpp"
#include "grid/ascii_map.hpp"
#include "measure/testbed.hpp"
#include "measure/tools.hpp"
#include "measure/two_phase.hpp"
#include "world/placement.hpp"

using namespace ageo;

int main() {
  std::printf("== ageo quickstart ==\n");

  // 1. A testbed: synthetic world, hub-routed network, 200 anchors + 400
  //    probes calibrated against each other.
  measure::TestbedConfig cfg;
  cfg.seed = 2018;
  cfg.constellation.n_anchors = 200;
  cfg.constellation.n_probes = 400;
  measure::Testbed bed(cfg);
  std::printf("testbed: %zu landmarks (%zu anchors), calibrated\n",
              bed.landmarks().size(), bed.anchor_ids().size());

  // 2. A target in Czechia, in a "known" location we will pretend not to
  //    know.
  auto cz = bed.world().find_country("cz").value();
  Rng rng(7, "quickstart");
  geo::LatLon truth = world::random_point_in_country(bed.world(), cz, rng);
  netsim::HostProfile target_profile;
  target_profile.location = truth;
  target_profile.net_quality = 0.8;
  netsim::HostId target = bed.add_host(target_profile);
  std::printf("target placed at %s (%s)\n", geo::to_string(truth).c_str(),
              bed.world().country(cz).name.c_str());

  // 3. Two-phase measurement: the target connects to landmarks over TCP.
  measure::ProbeFn probe = [&](std::size_t lm) {
    return measure::CliTool::measure_ms(bed.net(), target,
                                        bed.landmark_host(lm));
  };
  auto tp = measure::two_phase_measure(bed, probe, rng);
  std::printf("phase 1 put the target in %s; phase 2 measured %zu landmarks\n",
              std::string(world::to_string(tp.continent)).c_str(),
              tp.observations.size());

  // 4. CBG++ multilateration on a 1-degree grid, clipped to plausible
  //    land.
  grid::Grid g(1.0);
  grid::Region mask = bed.world().plausibility_mask(g);
  algos::CbgPlusPlusGeolocator locator;
  auto detail = locator.locate_detailed(g, bed.store(), tp.observations,
                                        &mask);
  const auto& region = detail.estimate.region;

  std::printf("prediction region: %.0f km^2 over %zu cells\n",
              region.area_km2(), region.count());
  std::printf("  baseline subset: %zu disks, bestline subset: %zu disks, "
              "%zu discarded\n",
              detail.baseline_subset_size, detail.bestline_subset_size,
              detail.disks_discarded_by_baseline);
  if (auto c = region.centroid()) {
    std::printf("  centroid: %s (%.0f km from the true location)\n",
                geo::to_string(*c).c_str(),
                geo::distance_km(*c, truth));
  }
  std::printf("  covers the true location: %s\n",
              region.contains(truth) ? "YES" : "no");

  auto raster = bed.world().country_raster(g);
  std::printf("  countries covered:");
  for (auto c : raster.countries_in(region))
    std::printf(" %s", bed.world().country(c).code.c_str());
  std::printf("\n");

  // 5. Show it (paper Fig. 1 style): '.' = land, '#' = prediction,
  //    'X' = the true location.
  grid::AsciiMap viz(120);
  viz.add_layer(mask, '.');
  viz.add_layer(region, '#');
  viz.add_marker(truth, 'X');
  viz.crop_latitude(33.0, 62.0);  // zoom to Europe
  std::printf("\n%s", viz.to_string().c_str());
  return 0;
}
