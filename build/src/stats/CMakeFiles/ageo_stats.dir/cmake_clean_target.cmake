file(REMOVE_RECURSE
  "libageo_stats.a"
)
