# Empty compiler generated dependencies file for ageo_stats.
# This may be replaced when dependencies are built.
