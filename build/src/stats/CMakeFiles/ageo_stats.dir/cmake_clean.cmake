file(REMOVE_RECURSE
  "CMakeFiles/ageo_stats.dir/hull.cpp.o"
  "CMakeFiles/ageo_stats.dir/hull.cpp.o.d"
  "CMakeFiles/ageo_stats.dir/linmodel.cpp.o"
  "CMakeFiles/ageo_stats.dir/linmodel.cpp.o.d"
  "CMakeFiles/ageo_stats.dir/polyfit.cpp.o"
  "CMakeFiles/ageo_stats.dir/polyfit.cpp.o.d"
  "CMakeFiles/ageo_stats.dir/regression.cpp.o"
  "CMakeFiles/ageo_stats.dir/regression.cpp.o.d"
  "CMakeFiles/ageo_stats.dir/special.cpp.o"
  "CMakeFiles/ageo_stats.dir/special.cpp.o.d"
  "CMakeFiles/ageo_stats.dir/summary.cpp.o"
  "CMakeFiles/ageo_stats.dir/summary.cpp.o.d"
  "libageo_stats.a"
  "libageo_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
