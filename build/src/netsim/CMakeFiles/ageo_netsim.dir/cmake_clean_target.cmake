file(REMOVE_RECURSE
  "libageo_netsim.a"
)
