file(REMOVE_RECURSE
  "CMakeFiles/ageo_netsim.dir/dns.cpp.o"
  "CMakeFiles/ageo_netsim.dir/dns.cpp.o.d"
  "CMakeFiles/ageo_netsim.dir/network.cpp.o"
  "CMakeFiles/ageo_netsim.dir/network.cpp.o.d"
  "CMakeFiles/ageo_netsim.dir/proxy.cpp.o"
  "CMakeFiles/ageo_netsim.dir/proxy.cpp.o.d"
  "libageo_netsim.a"
  "libageo_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
