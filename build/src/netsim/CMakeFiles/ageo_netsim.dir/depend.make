# Empty dependencies file for ageo_netsim.
# This may be replaced when dependencies are built.
