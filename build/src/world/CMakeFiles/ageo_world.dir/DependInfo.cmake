
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/world/constellation.cpp" "src/world/CMakeFiles/ageo_world.dir/constellation.cpp.o" "gcc" "src/world/CMakeFiles/ageo_world.dir/constellation.cpp.o.d"
  "/root/repo/src/world/country.cpp" "src/world/CMakeFiles/ageo_world.dir/country.cpp.o" "gcc" "src/world/CMakeFiles/ageo_world.dir/country.cpp.o.d"
  "/root/repo/src/world/crowd.cpp" "src/world/CMakeFiles/ageo_world.dir/crowd.cpp.o" "gcc" "src/world/CMakeFiles/ageo_world.dir/crowd.cpp.o.d"
  "/root/repo/src/world/fleet.cpp" "src/world/CMakeFiles/ageo_world.dir/fleet.cpp.o" "gcc" "src/world/CMakeFiles/ageo_world.dir/fleet.cpp.o.d"
  "/root/repo/src/world/geojson.cpp" "src/world/CMakeFiles/ageo_world.dir/geojson.cpp.o" "gcc" "src/world/CMakeFiles/ageo_world.dir/geojson.cpp.o.d"
  "/root/repo/src/world/hubs.cpp" "src/world/CMakeFiles/ageo_world.dir/hubs.cpp.o" "gcc" "src/world/CMakeFiles/ageo_world.dir/hubs.cpp.o.d"
  "/root/repo/src/world/placement.cpp" "src/world/CMakeFiles/ageo_world.dir/placement.cpp.o" "gcc" "src/world/CMakeFiles/ageo_world.dir/placement.cpp.o.d"
  "/root/repo/src/world/world_model.cpp" "src/world/CMakeFiles/ageo_world.dir/world_model.cpp.o" "gcc" "src/world/CMakeFiles/ageo_world.dir/world_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/ageo_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ageo_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ageo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
