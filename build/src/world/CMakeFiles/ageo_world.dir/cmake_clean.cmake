file(REMOVE_RECURSE
  "CMakeFiles/ageo_world.dir/constellation.cpp.o"
  "CMakeFiles/ageo_world.dir/constellation.cpp.o.d"
  "CMakeFiles/ageo_world.dir/country.cpp.o"
  "CMakeFiles/ageo_world.dir/country.cpp.o.d"
  "CMakeFiles/ageo_world.dir/crowd.cpp.o"
  "CMakeFiles/ageo_world.dir/crowd.cpp.o.d"
  "CMakeFiles/ageo_world.dir/fleet.cpp.o"
  "CMakeFiles/ageo_world.dir/fleet.cpp.o.d"
  "CMakeFiles/ageo_world.dir/geojson.cpp.o"
  "CMakeFiles/ageo_world.dir/geojson.cpp.o.d"
  "CMakeFiles/ageo_world.dir/hubs.cpp.o"
  "CMakeFiles/ageo_world.dir/hubs.cpp.o.d"
  "CMakeFiles/ageo_world.dir/placement.cpp.o"
  "CMakeFiles/ageo_world.dir/placement.cpp.o.d"
  "CMakeFiles/ageo_world.dir/world_model.cpp.o"
  "CMakeFiles/ageo_world.dir/world_model.cpp.o.d"
  "libageo_world.a"
  "libageo_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
