# Empty compiler generated dependencies file for ageo_world.
# This may be replaced when dependencies are built.
