file(REMOVE_RECURSE
  "libageo_world.a"
)
