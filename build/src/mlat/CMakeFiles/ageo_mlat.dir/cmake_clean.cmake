file(REMOVE_RECURSE
  "CMakeFiles/ageo_mlat.dir/multilateration.cpp.o"
  "CMakeFiles/ageo_mlat.dir/multilateration.cpp.o.d"
  "CMakeFiles/ageo_mlat.dir/subset_dfs.cpp.o"
  "CMakeFiles/ageo_mlat.dir/subset_dfs.cpp.o.d"
  "libageo_mlat.a"
  "libageo_mlat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_mlat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
