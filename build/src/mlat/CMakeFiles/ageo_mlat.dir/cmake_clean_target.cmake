file(REMOVE_RECURSE
  "libageo_mlat.a"
)
