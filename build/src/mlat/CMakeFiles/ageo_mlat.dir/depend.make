# Empty dependencies file for ageo_mlat.
# This may be replaced when dependencies are built.
