# Empty dependencies file for ageo_calib.
# This may be replaced when dependencies are built.
