file(REMOVE_RECURSE
  "libageo_calib.a"
)
