file(REMOVE_RECURSE
  "CMakeFiles/ageo_calib.dir/cbg_model.cpp.o"
  "CMakeFiles/ageo_calib.dir/cbg_model.cpp.o.d"
  "CMakeFiles/ageo_calib.dir/octant_model.cpp.o"
  "CMakeFiles/ageo_calib.dir/octant_model.cpp.o.d"
  "CMakeFiles/ageo_calib.dir/spotter_model.cpp.o"
  "CMakeFiles/ageo_calib.dir/spotter_model.cpp.o.d"
  "CMakeFiles/ageo_calib.dir/store.cpp.o"
  "CMakeFiles/ageo_calib.dir/store.cpp.o.d"
  "libageo_calib.a"
  "libageo_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
