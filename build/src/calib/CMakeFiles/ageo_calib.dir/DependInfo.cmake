
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calib/cbg_model.cpp" "src/calib/CMakeFiles/ageo_calib.dir/cbg_model.cpp.o" "gcc" "src/calib/CMakeFiles/ageo_calib.dir/cbg_model.cpp.o.d"
  "/root/repo/src/calib/octant_model.cpp" "src/calib/CMakeFiles/ageo_calib.dir/octant_model.cpp.o" "gcc" "src/calib/CMakeFiles/ageo_calib.dir/octant_model.cpp.o.d"
  "/root/repo/src/calib/spotter_model.cpp" "src/calib/CMakeFiles/ageo_calib.dir/spotter_model.cpp.o" "gcc" "src/calib/CMakeFiles/ageo_calib.dir/spotter_model.cpp.o.d"
  "/root/repo/src/calib/store.cpp" "src/calib/CMakeFiles/ageo_calib.dir/store.cpp.o" "gcc" "src/calib/CMakeFiles/ageo_calib.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/ageo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ageo_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ageo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
