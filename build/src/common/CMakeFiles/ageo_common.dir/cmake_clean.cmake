file(REMOVE_RECURSE
  "CMakeFiles/ageo_common.dir/rng.cpp.o"
  "CMakeFiles/ageo_common.dir/rng.cpp.o.d"
  "libageo_common.a"
  "libageo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
