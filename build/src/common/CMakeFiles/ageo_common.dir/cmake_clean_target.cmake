file(REMOVE_RECURSE
  "libageo_common.a"
)
