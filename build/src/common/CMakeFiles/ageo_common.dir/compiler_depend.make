# Empty compiler generated dependencies file for ageo_common.
# This may be replaced when dependencies are built.
