
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/landmark_service.cpp" "src/measure/CMakeFiles/ageo_measure.dir/landmark_service.cpp.o" "gcc" "src/measure/CMakeFiles/ageo_measure.dir/landmark_service.cpp.o.d"
  "/root/repo/src/measure/proxy_measure.cpp" "src/measure/CMakeFiles/ageo_measure.dir/proxy_measure.cpp.o" "gcc" "src/measure/CMakeFiles/ageo_measure.dir/proxy_measure.cpp.o.d"
  "/root/repo/src/measure/refine.cpp" "src/measure/CMakeFiles/ageo_measure.dir/refine.cpp.o" "gcc" "src/measure/CMakeFiles/ageo_measure.dir/refine.cpp.o.d"
  "/root/repo/src/measure/testbed.cpp" "src/measure/CMakeFiles/ageo_measure.dir/testbed.cpp.o" "gcc" "src/measure/CMakeFiles/ageo_measure.dir/testbed.cpp.o.d"
  "/root/repo/src/measure/tools.cpp" "src/measure/CMakeFiles/ageo_measure.dir/tools.cpp.o" "gcc" "src/measure/CMakeFiles/ageo_measure.dir/tools.cpp.o.d"
  "/root/repo/src/measure/two_phase.cpp" "src/measure/CMakeFiles/ageo_measure.dir/two_phase.cpp.o" "gcc" "src/measure/CMakeFiles/ageo_measure.dir/two_phase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algos/CMakeFiles/ageo_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ageo_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/ageo_world.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/ageo_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ageo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ageo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mlat/CMakeFiles/ageo_mlat.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ageo_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ageo_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
