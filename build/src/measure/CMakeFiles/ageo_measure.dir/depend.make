# Empty dependencies file for ageo_measure.
# This may be replaced when dependencies are built.
