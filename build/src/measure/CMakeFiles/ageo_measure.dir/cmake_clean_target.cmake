file(REMOVE_RECURSE
  "libageo_measure.a"
)
