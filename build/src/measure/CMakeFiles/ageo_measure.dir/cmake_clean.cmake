file(REMOVE_RECURSE
  "CMakeFiles/ageo_measure.dir/landmark_service.cpp.o"
  "CMakeFiles/ageo_measure.dir/landmark_service.cpp.o.d"
  "CMakeFiles/ageo_measure.dir/proxy_measure.cpp.o"
  "CMakeFiles/ageo_measure.dir/proxy_measure.cpp.o.d"
  "CMakeFiles/ageo_measure.dir/refine.cpp.o"
  "CMakeFiles/ageo_measure.dir/refine.cpp.o.d"
  "CMakeFiles/ageo_measure.dir/testbed.cpp.o"
  "CMakeFiles/ageo_measure.dir/testbed.cpp.o.d"
  "CMakeFiles/ageo_measure.dir/tools.cpp.o"
  "CMakeFiles/ageo_measure.dir/tools.cpp.o.d"
  "CMakeFiles/ageo_measure.dir/two_phase.cpp.o"
  "CMakeFiles/ageo_measure.dir/two_phase.cpp.o.d"
  "libageo_measure.a"
  "libageo_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
