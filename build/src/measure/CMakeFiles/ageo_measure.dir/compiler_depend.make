# Empty compiler generated dependencies file for ageo_measure.
# This may be replaced when dependencies are built.
