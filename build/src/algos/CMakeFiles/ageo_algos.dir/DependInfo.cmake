
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/cbg.cpp" "src/algos/CMakeFiles/ageo_algos.dir/cbg.cpp.o" "gcc" "src/algos/CMakeFiles/ageo_algos.dir/cbg.cpp.o.d"
  "/root/repo/src/algos/cbg_pp.cpp" "src/algos/CMakeFiles/ageo_algos.dir/cbg_pp.cpp.o" "gcc" "src/algos/CMakeFiles/ageo_algos.dir/cbg_pp.cpp.o.d"
  "/root/repo/src/algos/geolocator.cpp" "src/algos/CMakeFiles/ageo_algos.dir/geolocator.cpp.o" "gcc" "src/algos/CMakeFiles/ageo_algos.dir/geolocator.cpp.o.d"
  "/root/repo/src/algos/hybrid.cpp" "src/algos/CMakeFiles/ageo_algos.dir/hybrid.cpp.o" "gcc" "src/algos/CMakeFiles/ageo_algos.dir/hybrid.cpp.o.d"
  "/root/repo/src/algos/iclab.cpp" "src/algos/CMakeFiles/ageo_algos.dir/iclab.cpp.o" "gcc" "src/algos/CMakeFiles/ageo_algos.dir/iclab.cpp.o.d"
  "/root/repo/src/algos/octant_full.cpp" "src/algos/CMakeFiles/ageo_algos.dir/octant_full.cpp.o" "gcc" "src/algos/CMakeFiles/ageo_algos.dir/octant_full.cpp.o.d"
  "/root/repo/src/algos/quasi_octant.cpp" "src/algos/CMakeFiles/ageo_algos.dir/quasi_octant.cpp.o" "gcc" "src/algos/CMakeFiles/ageo_algos.dir/quasi_octant.cpp.o.d"
  "/root/repo/src/algos/shortest_ping.cpp" "src/algos/CMakeFiles/ageo_algos.dir/shortest_ping.cpp.o" "gcc" "src/algos/CMakeFiles/ageo_algos.dir/shortest_ping.cpp.o.d"
  "/root/repo/src/algos/spotter.cpp" "src/algos/CMakeFiles/ageo_algos.dir/spotter.cpp.o" "gcc" "src/algos/CMakeFiles/ageo_algos.dir/spotter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/calib/CMakeFiles/ageo_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/mlat/CMakeFiles/ageo_mlat.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ageo_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ageo_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ageo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ageo_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
