file(REMOVE_RECURSE
  "libageo_algos.a"
)
