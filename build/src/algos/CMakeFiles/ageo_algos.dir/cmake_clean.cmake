file(REMOVE_RECURSE
  "CMakeFiles/ageo_algos.dir/cbg.cpp.o"
  "CMakeFiles/ageo_algos.dir/cbg.cpp.o.d"
  "CMakeFiles/ageo_algos.dir/cbg_pp.cpp.o"
  "CMakeFiles/ageo_algos.dir/cbg_pp.cpp.o.d"
  "CMakeFiles/ageo_algos.dir/geolocator.cpp.o"
  "CMakeFiles/ageo_algos.dir/geolocator.cpp.o.d"
  "CMakeFiles/ageo_algos.dir/hybrid.cpp.o"
  "CMakeFiles/ageo_algos.dir/hybrid.cpp.o.d"
  "CMakeFiles/ageo_algos.dir/iclab.cpp.o"
  "CMakeFiles/ageo_algos.dir/iclab.cpp.o.d"
  "CMakeFiles/ageo_algos.dir/octant_full.cpp.o"
  "CMakeFiles/ageo_algos.dir/octant_full.cpp.o.d"
  "CMakeFiles/ageo_algos.dir/quasi_octant.cpp.o"
  "CMakeFiles/ageo_algos.dir/quasi_octant.cpp.o.d"
  "CMakeFiles/ageo_algos.dir/shortest_ping.cpp.o"
  "CMakeFiles/ageo_algos.dir/shortest_ping.cpp.o.d"
  "CMakeFiles/ageo_algos.dir/spotter.cpp.o"
  "CMakeFiles/ageo_algos.dir/spotter.cpp.o.d"
  "libageo_algos.a"
  "libageo_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
