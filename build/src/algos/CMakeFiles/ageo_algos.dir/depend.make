# Empty dependencies file for ageo_algos.
# This may be replaced when dependencies are built.
