file(REMOVE_RECURSE
  "CMakeFiles/ageo_grid.dir/ascii_map.cpp.o"
  "CMakeFiles/ageo_grid.dir/ascii_map.cpp.o.d"
  "CMakeFiles/ageo_grid.dir/field.cpp.o"
  "CMakeFiles/ageo_grid.dir/field.cpp.o.d"
  "CMakeFiles/ageo_grid.dir/grid.cpp.o"
  "CMakeFiles/ageo_grid.dir/grid.cpp.o.d"
  "CMakeFiles/ageo_grid.dir/raster.cpp.o"
  "CMakeFiles/ageo_grid.dir/raster.cpp.o.d"
  "CMakeFiles/ageo_grid.dir/region.cpp.o"
  "CMakeFiles/ageo_grid.dir/region.cpp.o.d"
  "CMakeFiles/ageo_grid.dir/serialize.cpp.o"
  "CMakeFiles/ageo_grid.dir/serialize.cpp.o.d"
  "libageo_grid.a"
  "libageo_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
