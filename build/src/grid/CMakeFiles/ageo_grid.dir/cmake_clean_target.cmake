file(REMOVE_RECURSE
  "libageo_grid.a"
)
