
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/ascii_map.cpp" "src/grid/CMakeFiles/ageo_grid.dir/ascii_map.cpp.o" "gcc" "src/grid/CMakeFiles/ageo_grid.dir/ascii_map.cpp.o.d"
  "/root/repo/src/grid/field.cpp" "src/grid/CMakeFiles/ageo_grid.dir/field.cpp.o" "gcc" "src/grid/CMakeFiles/ageo_grid.dir/field.cpp.o.d"
  "/root/repo/src/grid/grid.cpp" "src/grid/CMakeFiles/ageo_grid.dir/grid.cpp.o" "gcc" "src/grid/CMakeFiles/ageo_grid.dir/grid.cpp.o.d"
  "/root/repo/src/grid/raster.cpp" "src/grid/CMakeFiles/ageo_grid.dir/raster.cpp.o" "gcc" "src/grid/CMakeFiles/ageo_grid.dir/raster.cpp.o.d"
  "/root/repo/src/grid/region.cpp" "src/grid/CMakeFiles/ageo_grid.dir/region.cpp.o" "gcc" "src/grid/CMakeFiles/ageo_grid.dir/region.cpp.o.d"
  "/root/repo/src/grid/serialize.cpp" "src/grid/CMakeFiles/ageo_grid.dir/serialize.cpp.o" "gcc" "src/grid/CMakeFiles/ageo_grid.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/ageo_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ageo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
