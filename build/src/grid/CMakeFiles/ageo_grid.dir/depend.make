# Empty dependencies file for ageo_grid.
# This may be replaced when dependencies are built.
