file(REMOVE_RECURSE
  "libageo_ipdb.a"
)
