file(REMOVE_RECURSE
  "CMakeFiles/ageo_ipdb.dir/ip_database.cpp.o"
  "CMakeFiles/ageo_ipdb.dir/ip_database.cpp.o.d"
  "libageo_ipdb.a"
  "libageo_ipdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_ipdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
