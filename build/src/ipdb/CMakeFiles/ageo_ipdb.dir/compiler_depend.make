# Empty compiler generated dependencies file for ageo_ipdb.
# This may be replaced when dependencies are built.
