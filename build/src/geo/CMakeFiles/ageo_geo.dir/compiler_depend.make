# Empty compiler generated dependencies file for ageo_geo.
# This may be replaced when dependencies are built.
