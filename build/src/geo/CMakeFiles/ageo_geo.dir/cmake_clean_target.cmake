file(REMOVE_RECURSE
  "libageo_geo.a"
)
