file(REMOVE_RECURSE
  "CMakeFiles/ageo_geo.dir/geodesy.cpp.o"
  "CMakeFiles/ageo_geo.dir/geodesy.cpp.o.d"
  "CMakeFiles/ageo_geo.dir/latlon.cpp.o"
  "CMakeFiles/ageo_geo.dir/latlon.cpp.o.d"
  "CMakeFiles/ageo_geo.dir/polygon.cpp.o"
  "CMakeFiles/ageo_geo.dir/polygon.cpp.o.d"
  "libageo_geo.a"
  "libageo_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
