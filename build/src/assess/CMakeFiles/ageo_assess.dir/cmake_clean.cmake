file(REMOVE_RECURSE
  "CMakeFiles/ageo_assess.dir/audit.cpp.o"
  "CMakeFiles/ageo_assess.dir/audit.cpp.o.d"
  "CMakeFiles/ageo_assess.dir/claim.cpp.o"
  "CMakeFiles/ageo_assess.dir/claim.cpp.o.d"
  "CMakeFiles/ageo_assess.dir/colocation.cpp.o"
  "CMakeFiles/ageo_assess.dir/colocation.cpp.o.d"
  "CMakeFiles/ageo_assess.dir/confusion.cpp.o"
  "CMakeFiles/ageo_assess.dir/confusion.cpp.o.d"
  "CMakeFiles/ageo_assess.dir/investigate.cpp.o"
  "CMakeFiles/ageo_assess.dir/investigate.cpp.o.d"
  "CMakeFiles/ageo_assess.dir/report.cpp.o"
  "CMakeFiles/ageo_assess.dir/report.cpp.o.d"
  "libageo_assess.a"
  "libageo_assess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_assess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
