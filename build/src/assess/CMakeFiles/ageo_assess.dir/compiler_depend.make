# Empty compiler generated dependencies file for ageo_assess.
# This may be replaced when dependencies are built.
