file(REMOVE_RECURSE
  "libageo_assess.a"
)
