
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assess/audit.cpp" "src/assess/CMakeFiles/ageo_assess.dir/audit.cpp.o" "gcc" "src/assess/CMakeFiles/ageo_assess.dir/audit.cpp.o.d"
  "/root/repo/src/assess/claim.cpp" "src/assess/CMakeFiles/ageo_assess.dir/claim.cpp.o" "gcc" "src/assess/CMakeFiles/ageo_assess.dir/claim.cpp.o.d"
  "/root/repo/src/assess/colocation.cpp" "src/assess/CMakeFiles/ageo_assess.dir/colocation.cpp.o" "gcc" "src/assess/CMakeFiles/ageo_assess.dir/colocation.cpp.o.d"
  "/root/repo/src/assess/confusion.cpp" "src/assess/CMakeFiles/ageo_assess.dir/confusion.cpp.o" "gcc" "src/assess/CMakeFiles/ageo_assess.dir/confusion.cpp.o.d"
  "/root/repo/src/assess/investigate.cpp" "src/assess/CMakeFiles/ageo_assess.dir/investigate.cpp.o" "gcc" "src/assess/CMakeFiles/ageo_assess.dir/investigate.cpp.o.d"
  "/root/repo/src/assess/report.cpp" "src/assess/CMakeFiles/ageo_assess.dir/report.cpp.o" "gcc" "src/assess/CMakeFiles/ageo_assess.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/ageo_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/ageo_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/ageo_world.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ageo_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ageo_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ageo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mlat/CMakeFiles/ageo_mlat.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/ageo_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ageo_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ageo_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
