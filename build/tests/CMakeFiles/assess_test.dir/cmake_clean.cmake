file(REMOVE_RECURSE
  "CMakeFiles/assess_test.dir/assess_test.cpp.o"
  "CMakeFiles/assess_test.dir/assess_test.cpp.o.d"
  "assess_test"
  "assess_test.pdb"
  "assess_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
