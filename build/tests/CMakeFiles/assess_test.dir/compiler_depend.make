# Empty compiler generated dependencies file for assess_test.
# This may be replaced when dependencies are built.
