file(REMOVE_RECURSE
  "CMakeFiles/landmark_service_test.dir/landmark_service_test.cpp.o"
  "CMakeFiles/landmark_service_test.dir/landmark_service_test.cpp.o.d"
  "landmark_service_test"
  "landmark_service_test.pdb"
  "landmark_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landmark_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
