# Empty dependencies file for landmark_service_test.
# This may be replaced when dependencies are built.
