file(REMOVE_RECURSE
  "CMakeFiles/regression_pins_test.dir/regression_pins_test.cpp.o"
  "CMakeFiles/regression_pins_test.dir/regression_pins_test.cpp.o.d"
  "regression_pins_test"
  "regression_pins_test.pdb"
  "regression_pins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_pins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
