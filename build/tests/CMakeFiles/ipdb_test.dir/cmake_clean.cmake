file(REMOVE_RECURSE
  "CMakeFiles/ipdb_test.dir/ipdb_test.cpp.o"
  "CMakeFiles/ipdb_test.dir/ipdb_test.cpp.o.d"
  "ipdb_test"
  "ipdb_test.pdb"
  "ipdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
