# Empty dependencies file for ipdb_test.
# This may be replaced when dependencies are built.
