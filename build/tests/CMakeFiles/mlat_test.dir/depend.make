# Empty dependencies file for mlat_test.
# This may be replaced when dependencies are built.
