file(REMOVE_RECURSE
  "CMakeFiles/mlat_test.dir/mlat_test.cpp.o"
  "CMakeFiles/mlat_test.dir/mlat_test.cpp.o.d"
  "mlat_test"
  "mlat_test.pdb"
  "mlat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
