file(REMOVE_RECURSE
  "CMakeFiles/investigate_test.dir/investigate_test.cpp.o"
  "CMakeFiles/investigate_test.dir/investigate_test.cpp.o.d"
  "investigate_test"
  "investigate_test.pdb"
  "investigate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/investigate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
