# Empty dependencies file for investigate_test.
# This may be replaced when dependencies are built.
