# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/world_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/calib_test[1]_include.cmake")
include("/root/repo/build/tests/mlat_test[1]_include.cmake")
include("/root/repo/build/tests/algos_test[1]_include.cmake")
include("/root/repo/build/tests/measure_test[1]_include.cmake")
include("/root/repo/build/tests/assess_test[1]_include.cmake")
include("/root/repo/build/tests/ipdb_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/investigate_test[1]_include.cmake")
include("/root/repo/build/tests/landmark_service_test[1]_include.cmake")
include("/root/repo/build/tests/config_paths_test[1]_include.cmake")
include("/root/repo/build/tests/regression_pins_test[1]_include.cmake")
