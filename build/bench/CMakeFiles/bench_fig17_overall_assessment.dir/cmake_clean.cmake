file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_overall_assessment.dir/bench_fig17_overall_assessment.cpp.o"
  "CMakeFiles/bench_fig17_overall_assessment.dir/bench_fig17_overall_assessment.cpp.o.d"
  "bench_fig17_overall_assessment"
  "bench_fig17_overall_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_overall_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
