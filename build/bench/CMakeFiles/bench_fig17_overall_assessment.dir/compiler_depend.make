# Empty compiler generated dependencies file for bench_fig17_overall_assessment.
# This may be replaced when dependencies are built.
