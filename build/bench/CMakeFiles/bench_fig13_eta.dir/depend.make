# Empty dependencies file for bench_fig13_eta.
# This may be replaced when dependencies are built.
