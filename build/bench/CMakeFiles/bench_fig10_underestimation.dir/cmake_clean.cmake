file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_underestimation.dir/bench_fig10_underestimation.cpp.o"
  "CMakeFiles/bench_fig10_underestimation.dir/bench_fig10_underestimation.cpp.o.d"
  "bench_fig10_underestimation"
  "bench_fig10_underestimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_underestimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
