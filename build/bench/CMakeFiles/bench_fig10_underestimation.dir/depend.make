# Empty dependencies file for bench_fig10_underestimation.
# This may be replaced when dependencies are built.
