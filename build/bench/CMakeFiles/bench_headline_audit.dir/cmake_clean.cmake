file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_audit.dir/bench_headline_audit.cpp.o"
  "CMakeFiles/bench_headline_audit.dir/bench_headline_audit.cpp.o.d"
  "bench_headline_audit"
  "bench_headline_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
