# Empty dependencies file for bench_headline_audit.
# This may be replaced when dependencies are built.
