# Empty compiler generated dependencies file for bench_ablation_adversary.
# This may be replaced when dependencies are built.
