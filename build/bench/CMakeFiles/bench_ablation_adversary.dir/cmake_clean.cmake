file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adversary.dir/bench_ablation_adversary.cpp.o"
  "CMakeFiles/bench_ablation_adversary.dir/bench_ablation_adversary.cpp.o.d"
  "bench_ablation_adversary"
  "bench_ablation_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
