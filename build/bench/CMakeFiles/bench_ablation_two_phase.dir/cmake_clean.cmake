file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_two_phase.dir/bench_ablation_two_phase.cpp.o"
  "CMakeFiles/bench_ablation_two_phase.dir/bench_ablation_two_phase.cpp.o.d"
  "bench_ablation_two_phase"
  "bench_ablation_two_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_two_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
