file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_algorithm_comparison.dir/bench_fig09_algorithm_comparison.cpp.o"
  "CMakeFiles/bench_fig09_algorithm_comparison.dir/bench_fig09_algorithm_comparison.cpp.o.d"
  "bench_fig09_algorithm_comparison"
  "bench_fig09_algorithm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_algorithm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
