# Empty compiler generated dependencies file for ageo_bench_util.
# This may be replaced when dependencies are built.
