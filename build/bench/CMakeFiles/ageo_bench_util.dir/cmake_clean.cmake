file(REMOVE_RECURSE
  "CMakeFiles/ageo_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/ageo_bench_util.dir/bench_util.cpp.o.d"
  "libageo_bench_util.a"
  "libageo_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
