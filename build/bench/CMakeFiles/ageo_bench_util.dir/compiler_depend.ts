# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ageo_bench_util.
