file(REMOVE_RECURSE
  "libageo_bench_util.a"
)
