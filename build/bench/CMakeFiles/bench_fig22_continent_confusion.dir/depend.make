# Empty dependencies file for bench_fig22_continent_confusion.
# This may be replaced when dependencies are built.
