file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_16_disambiguation.dir/bench_fig15_16_disambiguation.cpp.o"
  "CMakeFiles/bench_fig15_16_disambiguation.dir/bench_fig15_16_disambiguation.cpp.o.d"
  "bench_fig15_16_disambiguation"
  "bench_fig15_16_disambiguation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_16_disambiguation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
