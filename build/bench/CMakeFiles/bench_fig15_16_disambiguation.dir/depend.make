# Empty dependencies file for bench_fig15_16_disambiguation.
# This may be replaced when dependencies are built.
