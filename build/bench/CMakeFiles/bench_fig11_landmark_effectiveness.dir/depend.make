# Empty dependencies file for bench_fig11_landmark_effectiveness.
# This may be replaced when dependencies are built.
