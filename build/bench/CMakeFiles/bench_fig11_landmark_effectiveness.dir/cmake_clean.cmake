file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_landmark_effectiveness.dir/bench_fig11_landmark_effectiveness.cpp.o"
  "CMakeFiles/bench_fig11_landmark_effectiveness.dir/bench_fig11_landmark_effectiveness.cpp.o.d"
  "bench_fig11_landmark_effectiveness"
  "bench_fig11_landmark_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_landmark_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
