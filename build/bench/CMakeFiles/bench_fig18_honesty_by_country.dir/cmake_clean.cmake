file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_honesty_by_country.dir/bench_fig18_honesty_by_country.cpp.o"
  "CMakeFiles/bench_fig18_honesty_by_country.dir/bench_fig18_honesty_by_country.cpp.o.d"
  "bench_fig18_honesty_by_country"
  "bench_fig18_honesty_by_country.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_honesty_by_country.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
