# Empty compiler generated dependencies file for bench_fig18_honesty_by_country.
# This may be replaced when dependencies are built.
