# Empty dependencies file for bench_fig04_tool_validation.
# This may be replaced when dependencies are built.
