# Empty dependencies file for bench_fig05_06_windows.
# This may be replaced when dependencies are built.
