file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_06_windows.dir/bench_fig05_06_windows.cpp.o"
  "CMakeFiles/bench_fig05_06_windows.dir/bench_fig05_06_windows.cpp.o.d"
  "bench_fig05_06_windows"
  "bench_fig05_06_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_06_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
