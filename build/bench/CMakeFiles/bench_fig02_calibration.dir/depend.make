# Empty dependencies file for bench_fig02_calibration.
# This may be replaced when dependencies are built.
