# Empty compiler generated dependencies file for bench_ablation_octant_height.
# This may be replaced when dependencies are built.
