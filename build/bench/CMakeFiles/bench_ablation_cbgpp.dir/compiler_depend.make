# Empty compiler generated dependencies file for bench_ablation_cbgpp.
# This may be replaced when dependencies are built.
