file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cbgpp.dir/bench_ablation_cbgpp.cpp.o"
  "CMakeFiles/bench_ablation_cbgpp.dir/bench_ablation_cbgpp.cpp.o.d"
  "bench_ablation_cbgpp"
  "bench_ablation_cbgpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cbgpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
