# Empty compiler generated dependencies file for bench_fig21_database_comparison.
# This may be replaced when dependencies are built.
