# Empty dependencies file for bench_fig19_provider_maps.
# This may be replaced when dependencies are built.
