
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_core.cpp" "bench/CMakeFiles/bench_micro_core.dir/bench_micro_core.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_core.dir/bench_micro_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algos/CMakeFiles/ageo_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/mlat/CMakeFiles/ageo_mlat.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/ageo_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ageo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ageo_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ageo_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ageo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
