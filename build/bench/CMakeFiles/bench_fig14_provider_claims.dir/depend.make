# Empty dependencies file for bench_fig14_provider_claims.
# This may be replaced when dependencies are built.
