file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_provider_claims.dir/bench_fig14_provider_claims.cpp.o"
  "CMakeFiles/bench_fig14_provider_claims.dir/bench_fig14_provider_claims.cpp.o.d"
  "bench_fig14_provider_claims"
  "bench_fig14_provider_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_provider_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
