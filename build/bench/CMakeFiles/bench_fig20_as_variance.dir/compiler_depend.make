# Empty compiler generated dependencies file for bench_fig20_as_variance.
# This may be replaced when dependencies are built.
