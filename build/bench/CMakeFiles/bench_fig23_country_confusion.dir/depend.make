# Empty dependencies file for bench_fig23_country_confusion.
# This may be replaced when dependencies are built.
