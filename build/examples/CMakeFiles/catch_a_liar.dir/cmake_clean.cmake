file(REMOVE_RECURSE
  "CMakeFiles/catch_a_liar.dir/catch_a_liar.cpp.o"
  "CMakeFiles/catch_a_liar.dir/catch_a_liar.cpp.o.d"
  "catch_a_liar"
  "catch_a_liar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catch_a_liar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
