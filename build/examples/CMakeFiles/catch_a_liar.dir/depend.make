# Empty dependencies file for catch_a_liar.
# This may be replaced when dependencies are built.
