# Empty dependencies file for vpn_audit.
# This may be replaced when dependencies are built.
