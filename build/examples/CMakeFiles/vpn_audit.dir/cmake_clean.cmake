file(REMOVE_RECURSE
  "CMakeFiles/vpn_audit.dir/vpn_audit.cpp.o"
  "CMakeFiles/vpn_audit.dir/vpn_audit.cpp.o.d"
  "vpn_audit"
  "vpn_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpn_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
