# Empty dependencies file for ageo_audit_cli.
# This may be replaced when dependencies are built.
