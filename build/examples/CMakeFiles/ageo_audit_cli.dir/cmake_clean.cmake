file(REMOVE_RECURSE
  "CMakeFiles/ageo_audit_cli.dir/ageo_audit_cli.cpp.o"
  "CMakeFiles/ageo_audit_cli.dir/ageo_audit_cli.cpp.o.d"
  "ageo_audit_cli"
  "ageo_audit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ageo_audit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
