# Empty dependencies file for two_phase_refine.
# This may be replaced when dependencies are built.
