file(REMOVE_RECURSE
  "CMakeFiles/two_phase_refine.dir/two_phase_refine.cpp.o"
  "CMakeFiles/two_phase_refine.dir/two_phase_refine.cpp.o.d"
  "two_phase_refine"
  "two_phase_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_phase_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
